#pragma once

/// \file stats.hpp
/// Descriptive statistics over samples.
///
/// Used throughout: trace summaries (percentiles, autocorrelation — Section
/// 4.3 and the Section 8 discussion of temporal correlation), experiment
/// averaging (Section 7 repeats each run ten times), and the Lyapunov
/// diagnostics of Proposition 1 (time-averaged queue sizes).

#include <cstddef>
#include <span>
#include <vector>

namespace spotbid::numeric {

/// Numerically-stable running accumulator (Welford) for mean/variance.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Kahan-compensated sum.
[[nodiscard]] double kahan_sum(std::span<const double> xs);

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  ///< unbiased; 0 for n < 2
[[nodiscard]] double stddev(std::span<const double> xs);

/// q-th quantile (q in [0, 1]) with linear interpolation between order
/// statistics (type-7, the numpy/R default). Throws on empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Sample autocorrelation at the given lag (0 <= lag < n). Returns 1 at lag
/// 0; 0 when the series is constant.
[[nodiscard]] double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Histogram with equal-width bins over [lo, hi]; values outside the range
/// are clamped into the edge bins. density() integrates to 1.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const;
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }
  /// Empirical density at bin i: count / (total * bin_width).
  [[nodiscard]] double density(std::size_t i) const;
  /// All densities in bin order.
  [[nodiscard]] std::vector<double> densities() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean squared error between two equal-length series (the Figure-3 fit
/// quality metric; the paper reports MSE < 1e-6).
[[nodiscard]] double mean_squared_error(std::span<const double> a, std::span<const double> b);

}  // namespace spotbid::numeric
