#pragma once

/// \file roots.hpp
/// One-dimensional root finding.
///
/// The bidding strategies repeatedly invert monotone functions — the spot
/// price CDF (Proposition 4), the paper's psi function (Proposition 5), and
/// the provider's first-order condition (eq. 2). All of those are continuous
/// on a bracket, so bracketing methods (bisection, Brent) are the right tool:
/// guaranteed convergence, no derivatives required.

#include <functional>
#include <optional>

namespace spotbid::numeric {

/// Options shared by the root finders.
struct RootOptions {
  double x_tolerance = 1e-12;   ///< stop when the bracket is this narrow
  double f_tolerance = 0.0;     ///< stop when |f| falls below this
  int max_iterations = 200;     ///< hard cap; generously above need
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;          ///< best abscissa found
  double f = 0.0;          ///< f(x) at that abscissa
  int iterations = 0;      ///< iterations consumed
  bool converged = false;  ///< bracket/function tolerance met
};

/// Bisection on [lo, hi]. Requires f(lo) and f(hi) to have opposite signs
/// (or one of them to be zero). Throws spotbid::InvalidArgument otherwise.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                                const RootOptions& options = {});

/// Brent's method on [lo, hi]: inverse quadratic interpolation + secant +
/// bisection fallback. Same bracketing precondition as bisect(), typically
/// an order of magnitude fewer function evaluations.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                               const RootOptions& options = {});

/// Search for a sign-change bracket of f on [lo, hi] by scanning n_grid
/// equal subintervals; returns the first bracketing subinterval, or nullopt
/// if none of the grid cells brackets a root.
[[nodiscard]] std::optional<std::pair<double, double>> find_bracket(
    const std::function<double(double)>& f, double lo, double hi, int n_grid = 64);

}  // namespace spotbid::numeric
