#pragma once

/// \file interpolate.hpp
/// Interpolation over sorted grids.
///
/// The empirical spot-price model (Section 5 applied to real traces) exposes
/// a CDF built from samples. A raw ECDF is a step function whose inverse is
/// ill-conditioned for the optimizer, so we interpolate: piecewise-linear for
/// the CDF (giving a piecewise-constant density) and monotone cubic
/// (Fritsch-Carlson) when a smooth, shape-preserving curve is needed.

#include <cstddef>
#include <vector>

namespace spotbid::numeric {

/// Piecewise-linear interpolant through (x[i], y[i]); x must be strictly
/// increasing. Queries outside [x.front(), x.back()] clamp to the endpoint
/// values.
class LinearInterpolant {
 public:
  LinearInterpolant() = default;
  LinearInterpolant(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] double operator()(double x) const;
  /// Derivative (slope of the active segment; one-sided at knots).
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] bool empty() const { return x_.empty(); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }
  [[nodiscard]] const std::vector<double>& xs() const { return x_; }
  [[nodiscard]] const std::vector<double>& ys() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Monotone cubic Hermite interpolant (Fritsch-Carlson 1980). If y is
/// monotone in x, the interpolant is monotone too — exactly what a CDF
/// smoother needs. Same clamping behaviour as LinearInterpolant.
class MonotoneCubicInterpolant {
 public:
  MonotoneCubicInterpolant() = default;
  MonotoneCubicInterpolant(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] bool empty() const { return x_.empty(); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> slope_;  // Hermite endpoint slopes per knot
};

}  // namespace spotbid::numeric
