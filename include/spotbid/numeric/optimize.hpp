#pragma once

/// \file optimize.hpp
/// Derivative-free optimization.
///
/// Three solvers cover everything the paper needs:
///  - golden-section / Brent minimization for the unimodal 1-D cost curves
///    (eq. 10, 15, 19) and for cross-checking the provider's closed-form
///    price (eq. 3) against a direct maximization of eq. 1;
///  - grid-refined minimization for possibly non-unimodal objectives
///    (empirical cost curves built from noisy ECDFs);
///  - Nelder-Mead simplex for the multi-parameter least-squares fits of
///    Figure 3 (fitting (alpha | eta, beta, theta) to a price histogram).

#include <algorithm>
#include <functional>
#include <type_traits>
#include <vector>

#include "spotbid/core/types.hpp"

namespace spotbid::numeric {

/// Options for the 1-D minimizers.
struct MinimizeOptions {
  double x_tolerance = 1e-10;
  int max_iterations = 200;
};

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

namespace detail {

inline constexpr double kGoldenRatio = 0.6180339887498948482;  // (sqrt(5) - 1) / 2

/// Shared body of the golden_section overloads: templated on the callable
/// so optimizer inner loops (512-1024 objective evaluations per bid
/// decision) invoke the objective directly instead of through
/// std::function's type-erased dispatch.
template <class F>
MinimizeResult golden_section_impl(F& f, double lo, double hi, const MinimizeOptions& options) {
  if (!(lo <= hi)) throw InvalidArgument{"golden_section: lo > hi"};
  double a = lo;
  double b = hi;
  double x1 = b - kGoldenRatio * (b - a);
  double x2 = a + kGoldenRatio * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);

  MinimizeResult result;
  int i = 0;
  for (; i < options.max_iterations && (b - a) > options.x_tolerance; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGoldenRatio * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGoldenRatio * (b - a);
      f2 = f(x2);
    }
  }
  result.x = (f1 < f2) ? x1 : x2;
  result.f = std::min(f1, f2);
  result.iterations = i;
  result.converged = (b - a) <= options.x_tolerance;
  return result;
}

/// Shared body of the grid_then_golden overloads (see golden_section_impl).
template <class F>
MinimizeResult grid_then_golden_impl(F& f, double lo, double hi, int n_grid,
                                     const MinimizeOptions& options) {
  if (!(lo <= hi)) throw InvalidArgument{"grid_then_golden: lo > hi"};
  n_grid = std::max(n_grid, 2);
  int best = 0;
  double best_f = f(lo);
  for (int i = 1; i <= n_grid; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / n_grid;
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best = i;
    }
  }
  const double cell = (hi - lo) / n_grid;
  const double a = std::max(lo, lo + (best - 1) * cell);
  const double b = std::min(hi, lo + (best + 1) * cell);
  MinimizeResult refined = golden_section_impl(f, a, b, options);
  if (best_f < refined.f) {
    refined.x = lo + best * cell;
    refined.f = best_f;
  }
  refined.iterations += n_grid + 1;
  return refined;
}

}  // namespace detail

/// Golden-section search on [lo, hi]. Converges to a local minimum; exact
/// for unimodal f. Throws spotbid::InvalidArgument if lo > hi.
[[nodiscard]] MinimizeResult golden_section(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Templated overload: identical algorithm, no std::function dispatch.
/// (Callers passing a std::function lvalue still get the non-template
/// overload — overload resolution prefers the exact non-template match.)
template <class F, std::enable_if_t<std::is_invocable_r_v<double, F&, double>, int> = 0>
[[nodiscard]] MinimizeResult golden_section(F&& f, double lo, double hi,
                                            const MinimizeOptions& options = {}) {
  return detail::golden_section_impl(f, lo, hi, options);
}

/// Brent's parabolic-interpolation minimizer on [lo, hi]; same contract as
/// golden_section but usually far fewer evaluations on smooth objectives.
[[nodiscard]] MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Robust global 1-D minimization: evaluate f on an n_grid-point grid, then
/// refine around the best grid cell with golden-section. Handles objectives
/// with plateaus or several local minima (e.g. costs built on step-function
/// ECDFs) at the cost of n_grid extra evaluations.
[[nodiscard]] MinimizeResult grid_then_golden(const std::function<double(double)>& f, double lo,
                                              double hi, int n_grid = 256,
                                              const MinimizeOptions& options = {});

/// Templated overload of grid_then_golden (see the golden_section one).
template <class F, std::enable_if_t<std::is_invocable_r_v<double, F&, double>, int> = 0>
[[nodiscard]] MinimizeResult grid_then_golden(F&& f, double lo, double hi, int n_grid = 256,
                                              const MinimizeOptions& options = {}) {
  return detail::grid_then_golden_impl(f, lo, hi, n_grid, options);
}

/// Options for Nelder-Mead.
struct SimplexOptions {
  double f_tolerance = 1e-12;   ///< stop when simplex f-spread is below this
  double x_tolerance = 1e-10;   ///< ... or simplex diameter is below this
  int max_iterations = 2000;
  double initial_step = 0.1;    ///< relative step used to build the simplex
};

/// Result of a Nelder-Mead run.
struct SimplexResult {
  std::vector<double> x;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Nelder-Mead downhill simplex minimization of f over R^n starting from x0.
/// Standard reflection/expansion/contraction/shrink coefficients
/// (1, 2, 0.5, 0.5).
[[nodiscard]] SimplexResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                                        std::vector<double> x0,
                                        const SimplexOptions& options = {});

}  // namespace spotbid::numeric
