#pragma once

/// \file optimize.hpp
/// Derivative-free optimization.
///
/// Three solvers cover everything the paper needs:
///  - golden-section / Brent minimization for the unimodal 1-D cost curves
///    (eq. 10, 15, 19) and for cross-checking the provider's closed-form
///    price (eq. 3) against a direct maximization of eq. 1;
///  - grid-refined minimization for possibly non-unimodal objectives
///    (empirical cost curves built from noisy ECDFs);
///  - Nelder-Mead simplex for the multi-parameter least-squares fits of
///    Figure 3 (fitting (alpha | eta, beta, theta) to a price histogram).

#include <functional>
#include <vector>

namespace spotbid::numeric {

/// Options for the 1-D minimizers.
struct MinimizeOptions {
  double x_tolerance = 1e-10;
  int max_iterations = 200;
};

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Golden-section search on [lo, hi]. Converges to a local minimum; exact
/// for unimodal f. Throws spotbid::InvalidArgument if lo > hi.
[[nodiscard]] MinimizeResult golden_section(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Brent's parabolic-interpolation minimizer on [lo, hi]; same contract as
/// golden_section but usually far fewer evaluations on smooth objectives.
[[nodiscard]] MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Robust global 1-D minimization: evaluate f on an n_grid-point grid, then
/// refine around the best grid cell with golden-section. Handles objectives
/// with plateaus or several local minima (e.g. costs built on step-function
/// ECDFs) at the cost of n_grid extra evaluations.
[[nodiscard]] MinimizeResult grid_then_golden(const std::function<double(double)>& f, double lo,
                                              double hi, int n_grid = 256,
                                              const MinimizeOptions& options = {});

/// Options for Nelder-Mead.
struct SimplexOptions {
  double f_tolerance = 1e-12;   ///< stop when simplex f-spread is below this
  double x_tolerance = 1e-10;   ///< ... or simplex diameter is below this
  int max_iterations = 2000;
  double initial_step = 0.1;    ///< relative step used to build the simplex
};

/// Result of a Nelder-Mead run.
struct SimplexResult {
  std::vector<double> x;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Nelder-Mead downhill simplex minimization of f over R^n starting from x0.
/// Standard reflection/expansion/contraction/shrink coefficients
/// (1, 2, 0.5, 0.5).
[[nodiscard]] SimplexResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                                        std::vector<double> x0,
                                        const SimplexOptions& options = {});

}  // namespace spotbid::numeric
