#pragma once

/// \file integrate.hpp
/// One-dimensional quadrature.
///
/// The bidding math integrates the spot-price density repeatedly:
/// the conditional expected payment E[pi | pi <= p] (eq. 9) and the partial
/// expectation A(p) = integral x f(x) dx that appears in psi (Prop. 5).
/// Analytic distributions provide closed forms where available; these
/// routines back the general case and all cross-checks.

#include <functional>

namespace spotbid::numeric {

/// Composite trapezoid rule with n subintervals (n >= 1).
[[nodiscard]] double trapezoid(const std::function<double(double)>& f, double lo, double hi,
                               int n = 1024);

/// Composite Simpson rule with n subintervals (rounded up to even, n >= 2).
[[nodiscard]] double simpson(const std::function<double(double)>& f, double lo, double hi,
                             int n = 1024);

/// Adaptive Simpson quadrature with absolute tolerance tol and a recursion
/// depth cap. Suitable for smooth integrands with localized features (e.g.
/// the near-singular density of eq. 7 close to pi_bar/2).
[[nodiscard]] double adaptive_simpson(const std::function<double(double)>& f, double lo, double hi,
                                      double tol = 1e-10, int max_depth = 24);

}  // namespace spotbid::numeric
