#pragma once

/// \file market_metrics.hpp
/// Shared `market.*` registry references for the two market engines.
///
/// The SoA engine (spot_market.cpp) and the per-object oracle
/// (reference_market.cpp) must record into the *same* metric entries so a
/// deterministic snapshot taken after an oracle run is bit-comparable to
/// one taken after an SoA run. Factoring the cached references here — one
/// function-local static shared by both translation units — also keeps the
/// name/kind pairs from drifting apart.
///
/// The `market.band.*` counters are SoA-engine telemetry (how much work the
/// banded layout actually did); the oracle never touches them, so
/// equality checks between the engines filter that prefix out. They are
/// still inside the determinism contract: each is a pure function of the
/// simulated work and the status()-query sequence, never of thread count.

#include "spotbid/core/metrics.hpp"

namespace spotbid::market::detail {

/// Registry references resolved once per process (registration takes a
/// mutex; recording through the cached references is lock-free).
struct MarketMetrics {
  metrics::Counter& slots;
  metrics::Histogram& spot_price_usd;
  metrics::Counter& bids_submitted;
  metrics::Counter& launches;
  metrics::Counter& interruptions;
  metrics::Counter& terminations;
  metrics::Counter& closes;
  metrics::Counter& requests_unresolved;
  metrics::Counter& running_slot_total;
  metrics::Counter& pending_slot_total;
  metrics::Sum& revenue_usd;
  // SoA band telemetry (docs/METRICS.md "market.band.*").
  metrics::Counter& band_price_moves;
  metrics::Counter& band_scanned;
  metrics::Counter& band_settlements;
  metrics::Counter& band_compactions;
};

inline MarketMetrics& mm() {
  static MarketMetrics m{
      metrics::Registry::global().counter("market.slots"),
      metrics::Registry::global().histogram("market.spot_price_usd",
                                            metrics::kPriceBoundsUsd),
      metrics::Registry::global().counter("market.bids_submitted"),
      metrics::Registry::global().counter("market.launches"),
      metrics::Registry::global().counter("market.interruptions"),
      metrics::Registry::global().counter("market.terminations"),
      metrics::Registry::global().counter("market.closes"),
      metrics::Registry::global().counter("market.requests_unresolved"),
      metrics::Registry::global().counter("market.running_slot_total"),
      metrics::Registry::global().counter("market.pending_slot_total"),
      metrics::Registry::global().sum("market.revenue_usd"),
      metrics::Registry::global().counter("market.band.price_moves"),
      metrics::Registry::global().counter("market.band.scanned"),
      metrics::Registry::global().counter("market.band.settlements"),
      metrics::Registry::global().counter("market.band.compactions"),
  };
  return m;
}

}  // namespace spotbid::market::detail
