#pragma once

/// \file spot_market.hpp
/// Discrete-time spot-market simulator (Section 3.2 semantics).
///
/// The market advances in slots of length t_k. In each slot:
///  - requests whose bid price >= the slot's spot price run; a previously
///    pending (or newly submitted) request launches;
///  - an unfulfilled request (one-time or persistent) whose bid is below
///    the spot price stays PENDING until the price falls to its bid — EC2
///    keeps open spot requests waiting for fulfillment;
///  - running requests whose bid falls below the new spot price are
///    interrupted: persistent requests revert to pending and are
///    automatically re-considered every slot; one-time requests are
///    terminated and "exit the system once they fall below the current
///    spot price" (Section 3.2);
///  - running requests are charged THE SPOT PRICE (not their bid) for the
///    slot: "each successful bidder is charged only the spot price pi(t),
///    regardless of the bid (s)he placed" (Section 4.1).
///
/// Job-level semantics (execution progress, recovery time after an
/// interruption) live in spotbid::client and spotbid::mapreduce; the market
/// only manages request lifecycles and billing.
///
/// ## Engine: sorted-by-bid bands over structure-of-arrays state
///
/// The paper's trace analysis (and the generator's calibrated persistence,
/// ~0.9 for the Figure-5 types) says prices are sticky: most slots the spot
/// price does not move. The engine exploits that structure instead of
/// walking every request every slot:
///
///  - per-request state lives in parallel arrays indexed by RequestId (bid
///    price, lifecycle state, kind, accrued cost, slot tallies, ...);
///  - active requests are additionally kept in a band: a vector of
///    (bid, id) entries sorted by bid price. After every slot the market
///    invariant is "running <=> bid >= current price", so a price move from
///    p0 to p1 affects exactly the contiguous band range [min(p0,p1),
///    max(p0,p1)) found by binary search — an upward move interrupts (or
///    terminates) that range, a downward move re-admits it;
///  - billing is lazy: the price path is stored as "spells" (start slot,
///    per-slot charge). A running request remembers the slot its current
///    run segment started at, and settlement replays the oracle's per-slot
///    `cost += price * t_k` fold over the spells when the request is next
///    observed (status/interrupt/close/teardown). The replay performs the
///    same additions in the same order as the per-object oracle, so the
///    accrued cost is bit-identical, not just close;
///  - slots where the price does not move and nothing was submitted cost
///    O(1): one price compare.
///
/// `market::ReferenceMarket` (reference_market.hpp) is the original
/// per-object engine, kept as the bit-identity oracle; `bench_market` and
/// tests/test_market_soa.cpp pin this engine against it bit-for-bit on
/// costs, event ordering, and the deterministic metrics snapshot.

#include <cstdint>
#include <memory>
#include <vector>

#include "spotbid/core/metrics.hpp"
#include "spotbid/market/price_source.hpp"

namespace spotbid::market {

/// One-time vs persistent bids (Section 3.2).
enum class BidKind : std::uint8_t { kOneTime, kPersistent };

/// Lifecycle state of a request.
enum class RequestState : std::uint8_t {
  kSubmitted,   ///< submitted this slot; considered at the next advance()
  kPending,     ///< waiting for the price to fall to the bid
  kRunning,     ///< instance up
  kTerminated,  ///< one-time request outbid after running (job did not finish)
  kClosed,      ///< closed by the user (job finished or cancelled)
};

/// What happened to a request during a slot.
enum class EventKind : std::uint8_t {
  kLaunched,
  kInterrupted,  ///< persistent request outbid; instance reverts to pending
  kTerminated,   ///< one-time request outbid
  kClosed,
};

using RequestId = std::uint64_t;

/// A bid for one instance.
struct BidRequest {
  Money bid_price{};
  BidKind kind = BidKind::kPersistent;
};

/// Event record for the market log.
struct Event {
  SlotIndex slot = 0;
  RequestId request = 0;
  EventKind kind = EventKind::kLaunched;

  [[nodiscard]] bool operator==(const Event&) const = default;
};

/// Per-request bookkeeping exposed to callers.
struct RequestStatus {
  RequestState state = RequestState::kSubmitted;
  Money bid_price{};
  BidKind kind = BidKind::kPersistent;
  Money accrued_cost{};     ///< sum over running slots of spot price * t_k
  long running_slots = 0;   ///< slots spent running
  long pending_slots = 0;   ///< slots spent pending (idle)
  int launches = 0;         ///< number of (re)launches
  int interruptions = 0;    ///< number of interruptions (persistent only)
  SlotIndex submitted_slot = 0;
  SlotIndex closed_slot = -1;  ///< slot of close/terminate, -1 if open
};

/// Report of one advance() call.
struct SlotReport {
  SlotIndex slot = 0;
  Money price{};
  std::vector<Event> events;
};

/// Observability: each market batches its per-slot metrics locally
/// (`market.slots`, `market.spot_price_usd`) and merges them into
/// metrics::Registry::global() when it is destroyed; request-lifecycle
/// metrics (`market.launches`, `market.interruptions`,
/// `market.terminations`, `market.closes`, `market.revenue_usd`, ...) are
/// tallied when a request reaches a final state (or at market teardown)
/// into per-market CounterBatch/SumBatch shards, flushed at destruction.
/// All of them are integers or fixed-point sums, so parallel replicas merge
/// deterministically — see docs/METRICS.md for the full catalogue,
/// including the SoA band telemetry under `market.band.*`.
class SpotMarket {
 public:
  explicit SpotMarket(std::unique_ptr<PriceSource> source);

  SpotMarket(SpotMarket&&) noexcept;
  SpotMarket& operator=(SpotMarket&&) noexcept;

  /// Flushes the metric batches and records requests still open (their
  /// lifecycle tallies would otherwise be lost with the market).
  ~SpotMarket();

  /// Slot length t_k of the underlying price source.
  [[nodiscard]] Hours slot_length() const { return source_->slot_length(); }

  /// Index of the next slot advance() will simulate. Slot 0 has not run
  /// until advance() is called once.
  [[nodiscard]] SlotIndex current_slot() const { return next_slot_; }

  /// Spot price of the most recently simulated slot. Throws ModelError
  /// before the first advance().
  [[nodiscard]] Money current_price() const;

  /// Submit a bid; it participates in the auction from the next advance().
  /// The bid must be positive.
  RequestId submit(const BidRequest& request);

  /// Close a request (job finished or user cancellation). Releases the
  /// instance if running. Throws InvalidArgument for unknown ids; closing
  /// an already-final request is a no-op. A request closed while still
  /// kSubmitted (same slot it was submitted) never enters the auction:
  /// closed_slot == submitted_slot, accrued_cost stays zero, and the log
  /// records only the kClosed event.
  void close(RequestId id);

  /// Simulate one slot and return what happened. Events are reported in
  /// ascending request-id order, exactly like the per-object oracle.
  SlotReport advance();

  /// Simulate `n` slots, discarding per-slot reports.
  void advance_many(int n);

  /// Settled view of one request. The returned reference stays valid until
  /// the next submit() (vector growth), like the per-object engine.
  [[nodiscard]] const RequestStatus& status(RequestId id) const;
  [[nodiscard]] const std::vector<Event>& event_log() const { return events_; }

  /// True if the request is in a final state (terminated/closed).
  [[nodiscard]] bool is_final(RequestId id) const;

 private:
  /// One constant-price stretch of the simulated price path. `charge_usd`
  /// is (price * t_k) computed once when the spell opens; settlement
  /// replays it per slot so costs fold exactly like the oracle's.
  struct Spell {
    SlotIndex start = 0;
    double charge_usd = 0.0;
  };

  /// Band entry: active requests sorted by (bid, id). Entries whose
  /// request has reached a final state are skipped (and compacted away
  /// once they dominate the band).
  struct BandEntry {
    double bid_usd = 0.0;
    RequestId id = 0;
  };

  /// Band order: by bid price, ties by request id. Ids are unique, so this
  /// is a strict total order and equal-bid clusters keep submission order.
  [[nodiscard]] static bool band_less(const BandEntry& a, const BandEntry& b);

  /// First entry of a sorted run with bid >= price_usd.
  [[nodiscard]] static std::vector<BandEntry>::iterator run_lower_bound(
      std::vector<BandEntry>& run, double price_usd);

  /// Memoized settlement fold (see settle_running): the replayed
  /// accumulation from an exact-zero accumulator is a pure function of
  /// (segment start slot, starting spell, upto), so requests launched at
  /// the same slot share one replay. Entries are valid for a single
  /// `fold_cache_upto_` epoch; spell_in doubles as the occupancy marker.
  struct FoldCacheEntry {
    std::uint32_t spell_in = 0xFFFFFFFFu;
    std::uint32_t spell_out = 0;
    double acc_out = 0.0;
  };

  /// Replay the per-slot billing fold over `spells_` for the open running
  /// segment of `id`, up to (excluding) slot `upto`.
  void settle_running(RequestId id, SlotIndex upto) const;
  /// Account the open pending segment of `id` up to (excluding) `upto`.
  void settle_pending(RequestId id, SlotIndex upto) const;
  /// Bring `id`'s tallies up to next_slot_ (no-op for submitted/final).
  void settle(RequestId id) const;
  /// Refresh the cold RequestStatus cache row for `id` from the arrays.
  void materialize(RequestId id) const;

  /// Merge a request's lifecycle tallies into the per-market batch shards;
  /// called exactly once per request, when it reaches a final state (or
  /// from the destructor when it never does). The request must be settled.
  void record_final_metrics(RequestId id, bool resolved);

  /// Drop final-state entries once they dominate the band runs.
  void maybe_compact();

  /// Merge the fresh run into the main band (geometric promotion: called
  /// once the fresh run has grown to the main band's size, so the total
  /// merge work stays O(n log n) over any submission schedule).
  void promote_fresh();

  std::unique_ptr<PriceSource> source_;

  // --- structure-of-arrays request state, indexed by RequestId ----------
  std::vector<double> bid_usd_;
  std::vector<BidKind> kind_;
  std::vector<RequestState> state_;
  std::vector<int> launches_;
  std::vector<int> interruptions_;
  std::vector<SlotIndex> submitted_slot_;
  std::vector<SlotIndex> closed_slot_;
  // Lazily settled tallies (mutable: settlement runs from const status()).
  mutable std::vector<double> acc_usd_;
  mutable std::vector<long> running_slots_;
  mutable std::vector<long> pending_slots_;
  /// Slot the open running/pending segment started at (== settled-up-to).
  mutable std::vector<SlotIndex> seg_start_;
  /// Index into spells_ of the spell containing seg_start_ (running only).
  mutable std::vector<std::uint32_t> settle_spell_;
  /// Cold per-request view handed out by status(); refreshed on demand.
  mutable std::vector<RequestStatus> requests_;

  // The bid book as two sorted-by-(bid, id) runs: a large, mostly stable
  // main band and a small fresh run absorbing recent submissions. Price
  // sweeps binary-search each run independently; per-slot merges only ever
  // touch the fresh run, which is promoted into the main band when it
  // catches up in size (LSM-style, so churn-heavy schedules don't pay an
  // O(band) merge per slot).
  std::vector<BandEntry> band_;    ///< main run
  std::vector<BandEntry> fresh_;   ///< recently submitted run
  std::vector<RequestId> staged_;  ///< submitted since the last advance()
  std::size_t stale_ = 0;          ///< final-state entries still in the runs
  std::vector<Spell> spells_;      ///< price path as constant-price spells
  // Settlement fold memo, one slot of entries per epoch (see settle_running).
  mutable std::vector<FoldCacheEntry> fold_cache_;
  mutable SlotIndex fold_cache_upto_ = -1;

  std::vector<Event> events_;
  SlotIndex next_slot_ = 0;
  Money current_price_{};
  bool has_price_ = false;
  // Local shard of the slot-weighted price histogram. Spot prices are
  // sticky, so instead of per-slot observations the market records one
  // "spell" (price, run length) whenever the price changes — the hot loop
  // pays a single compare against current_price_, which advance() loads
  // anyway. spell_start_ is the slot the current spell began at; the
  // destructor flushes the open spell and derives market.slots from the
  // batch. Moved-from markets are left with an empty batch, so a slot is
  // never counted twice.
  metrics::HistogramBatch price_batch_;
  SlotIndex spell_start_ = 0;

  // Per-market lifecycle shards (docs/METRICS.md `market.*`), flushed by
  // the member destructors after the market's own destructor body ran.
  metrics::CounterBatch bids_submitted_batch_;
  metrics::CounterBatch launches_batch_;
  metrics::CounterBatch interruptions_batch_;
  metrics::CounterBatch terminations_batch_;
  metrics::CounterBatch closes_batch_;
  metrics::CounterBatch unresolved_batch_;
  metrics::CounterBatch running_slots_batch_;
  metrics::CounterBatch pending_slots_batch_;
  metrics::SumBatch revenue_batch_;
  // SoA band telemetry (`market.band.*`); settlements fire from const
  // settlement paths, hence mutable.
  metrics::CounterBatch band_moves_batch_;
  metrics::CounterBatch band_scanned_batch_;
  mutable metrics::CounterBatch band_settlements_batch_;
  metrics::CounterBatch band_compactions_batch_;
};

}  // namespace spotbid::market
