#pragma once

/// \file spot_market.hpp
/// Discrete-time spot-market simulator (Section 3.2 semantics).
///
/// The market advances in slots of length t_k. In each slot:
///  - requests whose bid price >= the slot's spot price run; a previously
///    pending (or newly submitted) request launches;
///  - an unfulfilled request (one-time or persistent) whose bid is below
///    the spot price stays PENDING until the price falls to its bid — EC2
///    keeps open spot requests waiting for fulfillment;
///  - running requests whose bid falls below the new spot price are
///    interrupted: persistent requests revert to pending and are
///    automatically re-considered every slot; one-time requests are
///    terminated and "exit the system once they fall below the current
///    spot price" (Section 3.2);
///  - running requests are charged THE SPOT PRICE (not their bid) for the
///    slot: "each successful bidder is charged only the spot price pi(t),
///    regardless of the bid (s)he placed" (Section 4.1).
///
/// Job-level semantics (execution progress, recovery time after an
/// interruption) live in spotbid::client and spotbid::mapreduce; the market
/// only manages request lifecycles and billing.

#include <cstdint>
#include <memory>
#include <vector>

#include "spotbid/core/metrics.hpp"
#include "spotbid/market/price_source.hpp"

namespace spotbid::market {

/// One-time vs persistent bids (Section 3.2).
enum class BidKind : std::uint8_t { kOneTime, kPersistent };

/// Lifecycle state of a request.
enum class RequestState : std::uint8_t {
  kSubmitted,   ///< submitted this slot; considered at the next advance()
  kPending,     ///< waiting for the price to fall to the bid
  kRunning,     ///< instance up
  kTerminated,  ///< one-time request outbid after running (job did not finish)
  kClosed,      ///< closed by the user (job finished or cancelled)
};

/// What happened to a request during a slot.
enum class EventKind : std::uint8_t {
  kLaunched,
  kInterrupted,  ///< persistent request outbid; instance reverts to pending
  kTerminated,   ///< one-time request outbid
  kClosed,
};

using RequestId = std::uint64_t;

/// A bid for one instance.
struct BidRequest {
  Money bid_price{};
  BidKind kind = BidKind::kPersistent;
};

/// Event record for the market log.
struct Event {
  SlotIndex slot = 0;
  RequestId request = 0;
  EventKind kind = EventKind::kLaunched;
};

/// Per-request bookkeeping exposed to callers.
struct RequestStatus {
  RequestState state = RequestState::kSubmitted;
  Money bid_price{};
  BidKind kind = BidKind::kPersistent;
  Money accrued_cost{};     ///< sum over running slots of spot price * t_k
  long running_slots = 0;   ///< slots spent running
  long pending_slots = 0;   ///< slots spent pending (idle)
  int launches = 0;         ///< number of (re)launches
  int interruptions = 0;    ///< number of interruptions (persistent only)
  SlotIndex submitted_slot = 0;
  SlotIndex closed_slot = -1;  ///< slot of close/terminate, -1 if open
};

/// Report of one advance() call.
struct SlotReport {
  SlotIndex slot = 0;
  Money price{};
  std::vector<Event> events;
};

/// Observability: each market batches its per-slot metrics locally
/// (`market.slots`, `market.spot_price_usd`) and merges them into
/// metrics::Registry::global() when it is destroyed; request-lifecycle
/// metrics (`market.launches`, `market.interruptions`,
/// `market.terminations`, `market.closes`, `market.revenue_usd`, ...) are
/// recorded once per request when it reaches a final state (or at market
/// teardown for requests still open). All of them are integers or
/// fixed-point sums, so parallel replicas merge deterministically — see
/// docs/METRICS.md for the full catalogue.
class SpotMarket {
 public:
  explicit SpotMarket(std::unique_ptr<PriceSource> source);

  SpotMarket(SpotMarket&&) noexcept;
  SpotMarket& operator=(SpotMarket&&) noexcept;

  /// Flushes the metric batches and records requests still open (their
  /// lifecycle tallies would otherwise be lost with the market).
  ~SpotMarket();

  /// Slot length t_k of the underlying price source.
  [[nodiscard]] Hours slot_length() const { return source_->slot_length(); }

  /// Index of the next slot advance() will simulate. Slot 0 has not run
  /// until advance() is called once.
  [[nodiscard]] SlotIndex current_slot() const { return next_slot_; }

  /// Spot price of the most recently simulated slot. Throws ModelError
  /// before the first advance().
  [[nodiscard]] Money current_price() const;

  /// Submit a bid; it participates in the auction from the next advance().
  /// The bid must be positive.
  RequestId submit(const BidRequest& request);

  /// Close a request (job finished or user cancellation). Releases the
  /// instance if running. Throws InvalidArgument for unknown ids; closing
  /// an already-final request is a no-op. A request closed while still
  /// kSubmitted (same slot it was submitted) never enters the auction:
  /// closed_slot == submitted_slot, accrued_cost stays zero, and the log
  /// records only the kClosed event.
  void close(RequestId id);

  /// Simulate one slot and return what happened.
  SlotReport advance();

  /// Simulate `n` slots, discarding per-slot reports.
  void advance_many(int n);

  [[nodiscard]] const RequestStatus& status(RequestId id) const;
  [[nodiscard]] const std::vector<Event>& event_log() const { return events_; }

  /// True if the request is in a final state (terminated/closed).
  [[nodiscard]] bool is_final(RequestId id) const;

 private:
  RequestStatus& status_mutable(RequestId id);

  /// Merge a request's lifecycle tallies into the global registry; called
  /// exactly once per request, when it reaches a final state (or from the
  /// destructor when it never does).
  void record_request_metrics(const RequestStatus& request, bool resolved);

  std::unique_ptr<PriceSource> source_;
  std::vector<RequestStatus> requests_;
  std::vector<Event> events_;
  SlotIndex next_slot_ = 0;
  Money current_price_{};
  bool has_price_ = false;
  // Local shard of the slot-weighted price histogram. Spot prices are
  // sticky, so instead of per-slot observations the market records one
  // "spell" (price, run length) whenever the price changes — the hot loop
  // pays a single compare against current_price_, which advance() loads
  // anyway. spell_start_ is the slot the current spell began at; the
  // destructor flushes the open spell and derives market.slots from the
  // batch. Moved-from markets are left with an empty batch, so a slot is
  // never counted twice.
  metrics::HistogramBatch price_batch_;
  SlotIndex spell_start_ = 0;
};

}  // namespace spotbid::market
