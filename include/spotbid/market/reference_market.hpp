#pragma once

/// \file reference_market.hpp
/// The per-object reference implementation of the Section 3.2 market.
///
/// This is the original SpotMarket engine, kept verbatim as the
/// bit-identity oracle for the structure-of-arrays engine that replaced it
/// on the hot path (spot_market.hpp). It walks every request once per slot
/// with the obviously-correct state machine; `bench_market` and
/// `tests/test_market_soa.cpp` pin the SoA engine against it bit-for-bit —
/// per-bid accrued cost, event ordering, and the deterministic metrics
/// snapshot — the same oracle-vs-fast pattern `bench_query_plane` uses for
/// the knot sweep (DESIGN.md §5).
///
/// Both engines share the public vocabulary types (BidRequest, Event,
/// RequestStatus, SlotReport, ...) declared in spot_market.hpp and record
/// the same `market.*` metrics, so a snapshot taken after an oracle run is
/// directly comparable to one taken after an SoA run.

#include <memory>
#include <vector>

#include "spotbid/core/metrics.hpp"
#include "spotbid/market/price_source.hpp"
#include "spotbid/market/spot_market.hpp"

namespace spotbid::market {

/// Per-object oracle engine: one RequestStatus per bid, every bid visited
/// every slot. O(n) per slot, O(1) per price move amortization — correct,
/// slow, and simple enough to trust.
class ReferenceMarket {
 public:
  explicit ReferenceMarket(std::unique_ptr<PriceSource> source);

  ReferenceMarket(ReferenceMarket&&) noexcept;
  ReferenceMarket& operator=(ReferenceMarket&&) noexcept;

  /// Flushes the metric batches and records requests still open (their
  /// lifecycle tallies would otherwise be lost with the market).
  ~ReferenceMarket();

  /// Slot length t_k of the underlying price source.
  [[nodiscard]] Hours slot_length() const { return source_->slot_length(); }

  /// Index of the next slot advance() will simulate.
  [[nodiscard]] SlotIndex current_slot() const { return next_slot_; }

  /// Spot price of the most recently simulated slot. Throws ModelError
  /// before the first advance().
  [[nodiscard]] Money current_price() const;

  /// Submit a bid; it participates in the auction from the next advance().
  /// The bid must be positive.
  RequestId submit(const BidRequest& request);

  /// Close a request (see SpotMarket::close for the exact semantics — the
  /// two engines are contractually identical).
  void close(RequestId id);

  /// Simulate one slot and return what happened.
  SlotReport advance();

  /// Simulate `n` slots, discarding per-slot reports.
  void advance_many(int n);

  [[nodiscard]] const RequestStatus& status(RequestId id) const;
  [[nodiscard]] const std::vector<Event>& event_log() const { return events_; }

  /// True if the request is in a final state (terminated/closed).
  [[nodiscard]] bool is_final(RequestId id) const;

 private:
  RequestStatus& status_mutable(RequestId id);

  /// Merge a request's lifecycle tallies into the global registry; called
  /// exactly once per request, when it reaches a final state (or from the
  /// destructor when it never does).
  void record_request_metrics(const RequestStatus& request, bool resolved);

  std::unique_ptr<PriceSource> source_;
  std::vector<RequestStatus> requests_;
  std::vector<Event> events_;
  SlotIndex next_slot_ = 0;
  Money current_price_{};
  bool has_price_ = false;
  // Local shard of the slot-weighted price histogram, recorded as price
  // "spells" exactly like the SoA engine (see spot_market.hpp).
  metrics::HistogramBatch price_batch_;
  SlotIndex spell_start_ = 0;
};

}  // namespace spotbid::market
