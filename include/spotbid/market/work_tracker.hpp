#pragma once

/// \file work_tracker.hpp
/// Job progress accounting on top of a market request.
///
/// Section 5's job semantics: a job needs `work_required` hours of
/// execution; after every interruption the instance spends `recovery_time`
/// re-loading its checkpoint before useful work resumes ("persistent jobs
/// are configured to save their data to a separate volume once interrupted
/// and recover it upon resuming"). A WorkTracker consumes the per-slot
/// status of a market request and splits running time into recovery and
/// progress.

#include "spotbid/market/spot_market.hpp"

namespace spotbid::market {

class WorkTracker {
 public:
  WorkTracker(Hours work_required, Hours recovery_time, Hours slot_length);

  /// Feed the request's status after each market advance(). Idempotence is
  /// NOT provided: call exactly once per slot.
  void on_slot(const RequestStatus& status);

  [[nodiscard]] bool done() const { return progress_hours_ >= work_hours_ - 1e-12; }
  [[nodiscard]] Hours progress() const { return Hours{progress_hours_}; }
  [[nodiscard]] Hours work_required() const { return Hours{work_hours_}; }
  /// Total running time spent on checkpoint recovery so far.
  [[nodiscard]] Hours recovery_spent() const { return Hours{recovery_spent_hours_}; }
  /// Interruptions observed (relaunches after the first launch).
  [[nodiscard]] int interruptions_observed() const { return relaunches_; }
  /// Slots consumed since tracking began.
  [[nodiscard]] long slots_elapsed() const { return slots_; }

 private:
  double work_hours_;
  double recovery_hours_;
  double slot_hours_;
  double progress_hours_ = 0.0;
  double recovery_spent_hours_ = 0.0;
  double recovery_debt_hours_ = 0.0;
  int last_launches_ = 0;
  long last_running_slots_ = 0;
  int relaunches_ = 0;
  long slots_ = 0;
};

}  // namespace spotbid::market
