#pragma once

/// \file checkpoint.hpp
/// Checkpoint journal — the DynamoDB substitute (see DESIGN.md).
///
/// The paper's experiment ships an AMI whose boot script "writes instance
/// launched time as a sequence of items into Amazon DynamoDB, from which we
/// can obtain the instance status (first run or restarted from
/// interruption)". Persistent jobs additionally "save their data to a
/// separate volume once interrupted and recover it upon resuming", paying
/// t_r per interruption. CheckpointStore plays both roles in simulation: an
/// append-only journal of launches and progress checkpoints keyed by job
/// node.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spotbid/core/types.hpp"

namespace spotbid::market {

/// One journal record.
struct CheckpointRecord {
  SlotIndex slot = 0;
  enum class Kind : std::uint8_t { kLaunch, kProgress } kind = Kind::kLaunch;
  Hours completed_work{};  ///< cumulative verified work at this record
};

class CheckpointStore {
 public:
  /// Record an instance (re)launch at the given slot.
  void record_launch(const std::string& key, SlotIndex slot);

  /// Record a progress checkpoint: `completed_work` of the job is durably
  /// saved as of `slot`.
  void record_progress(const std::string& key, SlotIndex slot, Hours completed_work);

  /// Number of launches seen for the key (0 if never launched).
  [[nodiscard]] int launch_count(const std::string& key) const;

  /// True when the key has launched more than once — the paper's
  /// "restarted from interruption" test.
  [[nodiscard]] bool is_restart(const std::string& key) const;

  /// Work durably saved by the latest progress checkpoint (what survives an
  /// interruption); nullopt when no checkpoint exists.
  [[nodiscard]] std::optional<Hours> last_saved_work(const std::string& key) const;

  /// Full journal for a key (empty if unknown), in append order.
  [[nodiscard]] std::vector<CheckpointRecord> journal(const std::string& key) const;

  [[nodiscard]] std::size_t key_count() const { return journals_.size(); }

 private:
  std::unordered_map<std::string, std::vector<CheckpointRecord>> journals_;
};

}  // namespace spotbid::market
