#pragma once

/// \file price_source.hpp
/// Sources of per-slot spot prices for the market simulator.
///
/// The bidding strategies depend only on the realized price process
/// (Section 1.1: "these bidding strategies ... depend not on the specific
/// model of how providers choose the spot prices, but rather on the chosen
/// spot prices themselves"), so the market is parameterized by a
/// PriceSource. Three implementations:
///  - TracePriceSource replays recorded/synthetic history (Figure 4's
///    replay, the experiments' ground truth);
///  - ModelPriceSource draws i.i.d. equilibrium prices (Proposition 2);
///  - QueuePriceSource runs the eq.-4 demand recursion live.

#include <memory>

#include "spotbid/dist/distribution.hpp"
#include "spotbid/provider/model.hpp"
#include "spotbid/provider/queue.hpp"
#include "spotbid/trace/price_trace.hpp"

namespace spotbid::market {

/// Interface: the spot price of each slot, queried in nondecreasing slot
/// order. Implementations may be stateful but must be deterministic given
/// their construction parameters (same slot -> same price on re-query).
class PriceSource {
 public:
  virtual ~PriceSource() = default;

  [[nodiscard]] virtual Money price_at(SlotIndex slot) = 0;
  [[nodiscard]] virtual Hours slot_length() const = 0;
};

/// Replays a PriceTrace; wraps around at the end when `wrap` is true,
/// otherwise throws InvalidArgument past the last slot.
class TracePriceSource final : public PriceSource {
 public:
  explicit TracePriceSource(trace::PriceTrace trace, bool wrap = true);

  [[nodiscard]] Money price_at(SlotIndex slot) override;
  [[nodiscard]] Hours slot_length() const override;
  [[nodiscard]] const trace::PriceTrace& trace() const { return trace_; }

 private:
  trace::PriceTrace trace_;
  bool wrap_;
};

/// Draws prices from a price distribution (e.g. the Proposition-3
/// push-forward). With persistence 0 the slots are i.i.d.; otherwise each
/// slot carries the previous price over with that probability and redraws
/// from the marginal otherwise (sticky prices: same stationary law, real
/// spot markets' short-lag autocorrelation). Prices are generated lazily
/// and cached so re-queries are stable.
class ModelPriceSource final : public PriceSource {
 public:
  ModelPriceSource(dist::DistributionPtr price_distribution, Hours slot_length,
                   std::uint64_t seed, double persistence = 0.0);

  [[nodiscard]] Money price_at(SlotIndex slot) override;
  [[nodiscard]] Hours slot_length() const override;

 private:
  dist::DistributionPtr distribution_;
  Hours slot_length_;
  numeric::Rng rng_;
  double persistence_;
  std::vector<double> cache_;
};

/// Runs the Section-4.2 queue dynamics live: each new slot draws arrivals,
/// advances the demand recursion, and prices with eq. 3.
class QueuePriceSource final : public PriceSource {
 public:
  QueuePriceSource(provider::ProviderModel model, dist::DistributionPtr arrivals,
                   Hours slot_length, std::uint64_t seed);

  [[nodiscard]] Money price_at(SlotIndex slot) override;
  [[nodiscard]] Hours slot_length() const override;

 private:
  provider::QueueSimulator queue_;
  dist::DistributionPtr arrivals_;
  Hours slot_length_;
  numeric::Rng rng_;
  std::vector<double> cache_;
};

}  // namespace spotbid::market
