#pragma once

/// \file dag.hpp
/// Dependent-task workflows on spot instances (the paper's Section-8 "Task
/// dependence" extension).
///
/// "Some tasks within a job cannot proceed before other tasks have been
/// completed. ... we can in practice bid on these tasks only after the
/// tasks that they depend on have been completed. Thus, we will not bid on
/// idle tasks that are waiting for other tasks to finish."
///
/// A Workflow is a DAG of tasks; the engine submits each task's bid the
/// slot after its dependencies complete, tracks progress/recovery with a
/// WorkTracker, and reports per-task and end-to-end cost/makespan. Bids
/// are planned per task with the Section-5 strategies (plan_bids).

#include <string>
#include <vector>

#include "spotbid/bidding/price_model.hpp"
#include "spotbid/bidding/strategies.hpp"
#include "spotbid/market/spot_market.hpp"

namespace spotbid::workflow {

/// One task of the workflow.
struct TaskSpec {
  std::string name;
  Hours execution_time{0.5};
  Hours recovery_time = Hours::from_seconds(30.0);
  /// Indices into Workflow::tasks that must complete first.
  std::vector<std::size_t> depends_on;
  /// Bid used when the task becomes ready (fill manually or via plan_bids).
  Money bid{};
};

/// A directed acyclic workflow.
struct Workflow {
  std::vector<TaskSpec> tasks;
};

/// Validate the workflow and return a topological order of task indices.
/// An empty workflow yields an empty order. Throws InvalidArgument on
/// cycles, self-references or bad indices.
[[nodiscard]] std::vector<std::size_t> topological_order(const Workflow& workflow);

/// Fill every task's bid with the Proposition-5 persistent optimum for its
/// recovery time under the given price model.
void plan_bids(const bidding::SpotPriceModel& model, Workflow& workflow);

/// Outcome of one task.
struct TaskOutcome {
  bool completed = false;
  SlotIndex ready_slot = -1;   ///< when dependencies finished
  SlotIndex finish_slot = -1;  ///< when the task's work completed
  Money cost{};
  int interruptions = 0;
};

/// Outcome of the workflow run.
struct WorkflowOutcome {
  bool completed = false;  ///< all tasks finished within max_slots
  Hours makespan{};        ///< first submission to last completion
  Money total_cost{};
  std::vector<TaskOutcome> tasks;
};

/// Execute the workflow on the market. All bids are persistent requests
/// ("we will not bid on idle tasks": a task's request exists only between
/// readiness and completion).
[[nodiscard]] WorkflowOutcome run_workflow(market::SpotMarket& market, const Workflow& workflow,
                                           long max_slots = 500'000);

}  // namespace spotbid::workflow
