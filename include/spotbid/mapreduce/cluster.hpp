#pragma once

/// \file cluster.hpp
/// Simulated MapReduce cluster on spot instances (Sections 3.1 and 6).
///
/// Substitute for the paper's Hadoop-on-EMR word-count experiment (see
/// DESIGN.md): a master node on a one-time request plus M slave nodes on
/// persistent requests, possibly on different instance types (hence two
/// markets advanced in lockstep). The engine implements the paper's job
/// structure:
///  - the job (t_s + t_o of work) is divided into map tasks that the master
///    assigns to live slaves and RESCHEDULES when a slave fails;
///  - slaves pay t_r of recovery after every interruption before useful
///    work resumes (checkpointed progress itself survives on the data
///    volume);
///  - slaves only make progress while the master is up; if the master's
///    one-time request is outbid, it is immediately resubmitted (counted as
///    a master restart) — with Proposition-4 bids this is rare;
///  - optional per-slot hardware-failure injection exercises the
///    rescheduling path independently of price-driven interruptions.

#include <cstdint>

#include "spotbid/bidding/job.hpp"
#include "spotbid/market/spot_market.hpp"

namespace spotbid::mapreduce {

/// Cluster configuration.
struct ClusterConfig {
  int nodes = 4;                 ///< M slave nodes
  Money master_bid{};            ///< one-time bid for the master
  Money slave_bid{};             ///< persistent bid shared by all slaves
  bidding::ParallelJobSpec job;  ///< t_s, t_r, t_o (job.nodes is ignored)
  int tasks_per_node = 4;        ///< task granularity: M * tasks_per_node tasks
  double node_failure_probability = 0.0;  ///< per running slave-slot
  std::uint64_t seed = 7;        ///< failure-injection stream
  long max_slots = 500'000;      ///< safety cap on simulated slots
};

/// Outcome of a cluster run.
struct ClusterResult {
  bool completed = false;       ///< false only if max_slots was hit
  Hours completion_time{};      ///< wall-clock from submission to last task
  Money master_cost{};          ///< billed to the master request(s)
  Money slave_cost{};           ///< billed to all slave requests
  int slave_interruptions = 0;  ///< price-driven interruptions across slaves
  int master_restarts = 0;      ///< one-time master resubmissions
  int tasks_rescheduled = 0;    ///< reassignments after failures
  int injected_failures = 0;    ///< hardware-failure injections triggered
  long slots = 0;               ///< slots simulated

  [[nodiscard]] Money total_cost() const { return master_cost + slave_cost; }
};

/// Run a MapReduce job to completion. `master_market` and `slave_market`
/// must have equal slot lengths and are advanced in lockstep; pass the same
/// market twice to co-locate master and slaves on one instance type.
[[nodiscard]] ClusterResult run_mapreduce(market::SpotMarket& master_market,
                                          market::SpotMarket& slave_market,
                                          const ClusterConfig& config);

}  // namespace spotbid::mapreduce
