#include "spotbid/portfolio/deadline.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/dist/empirical.hpp"

namespace spotbid::portfolio {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Deterministic portfolio telemetry (docs/METRICS.md, `portfolio.*`):
/// pure functions of the queries asked, inside the determinism contract.
struct PortfolioCounters {
  metrics::Counter& law_queries;
  metrics::Counter& violation_evals;
};

PortfolioCounters& counters() {
  static PortfolioCounters c{
      metrics::Registry::global().counter("portfolio.law_queries"),
      metrics::Registry::global().counter("portfolio.violation_evals"),
  };
  return c;
}

// ---------------------------------------------------------------------------
// The standing oracle: naive O(K) left-to-right knot scans. The expressions
// and their evaluation order are copied verbatim from the Empirical
// constructor / point queries (src/dist/empirical.cpp), which is exactly why
// the fast prefix-array path reproduces them bit for bit — the prefix arrays
// were accumulated with these very operations.

double naive_cdf(const dist::Empirical& law, double x) {
  const std::vector<double>& xs = law.knots();
  const std::vector<double>& cum = law.knot_cdf();
  if (x < xs.front()) return 0.0;
  if (x >= xs.back()) return 1.0;
  std::size_t i = 0;
  while (xs[i + 1] <= x) ++i;  // O(K) walk; terminates: x < xs.back()
  const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return cum[i] + t * (cum[i + 1] - cum[i]);
}

double naive_partial_expectation(const dist::Empirical& law, double p) {
  const std::vector<double>& xs = law.knots();
  const std::vector<double>& cum = law.knot_cdf();
  if (p < xs.front()) return 0.0;
  double total = xs.front() * cum.front();  // atom at the minimum
  if (p >= xs.back()) {
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      const double hi = xs[i + 1];
      const double slope = (cum[i + 1] - cum[i]) / (xs[i + 1] - xs[i]);
      total += slope * 0.5 * (hi * hi - xs[i] * xs[i]);
    }
    return total;
  }
  std::size_t i = 0;
  while (xs[i + 1] <= p) {
    const double hi = xs[i + 1];
    const double slope = (cum[i + 1] - cum[i]) / (xs[i + 1] - xs[i]);
    total += slope * 0.5 * (hi * hi - xs[i] * xs[i]);
    ++i;
  }
  const double slope = (cum[i + 1] - cum[i]) / (xs[i + 1] - xs[i]);
  return total + slope * 0.5 * (p * p - xs[i] * xs[i]);
}

}  // namespace

double binomial_miss_tail(int n, double p, int m) {
  SPOTBID_EXPECT(n >= 0, "binomial_miss_tail: n must be >= 0");
  SPOTBID_REQUIRE_PROB(p, "binomial_miss_tail: p");
  if (m <= 0) return 0.0;  // nothing needed: never misses
  if (m > n) return 1.0;   // needs more slots than exist: always misses
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  // sum_{j=0}^{m-1} C(n,j) p^j (1-p)^{n-j}, each term assembled in log
  // space so (1-p)^n underflow cannot zero the whole tail. log C(n,j) is
  // built incrementally — no lgamma, whose global sign state is not
  // thread-clean — and the summation order is fixed (j ascending), so the
  // result is a pure function of (n, p, m).
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double log_choose = 0.0;
  double tail = 0.0;
  for (int j = 0; j < m; ++j) {
    tail += std::exp(log_choose + static_cast<double>(j) * log_p +
                     static_cast<double>(n - j) * log_q);
    log_choose += std::log(static_cast<double>(n - j) / (static_cast<double>(j) + 1.0));
  }
  return tail < 1.0 ? tail : 1.0;
}

DeadlineCalculator::DeadlineCalculator(const bidding::SpotPriceModel& model, Hours deadline,
                                       QueryPath path)
    : model_(&model), deadline_(deadline), path_(path) {
  SPOTBID_REQUIRE_FINITE(deadline.hours(), "DeadlineCalculator: deadline");
  SPOTBID_EXPECT(deadline.hours() > 0.0, "DeadlineCalculator: deadline must be > 0");
  const double slots = std::floor(deadline.hours() / model.slot_length().hours());
  SPOTBID_EXPECT(slots >= 1.0, "DeadlineCalculator: deadline shorter than one slot");
  SPOTBID_EXPECT(slots <= static_cast<double>(kMaxHorizonSlots),
                 "DeadlineCalculator: deadline spans more than kMaxHorizonSlots slots");
  horizon_ = static_cast<int>(slots);
  empirical_ = dynamic_cast<const dist::Empirical*>(&model.distribution());
}

double DeadlineCalculator::acceptance(Money bid) const {
  SPOTBID_REQUIRE_NOT_NAN(bid.usd(), "DeadlineCalculator::acceptance: bid");
  counters().law_queries.increment();
  if (path_ == QueryPath::kOracle && empirical_ != nullptr)
    return naive_cdf(*empirical_, bid.usd());
  return model_->acceptance(bid);
}

double DeadlineCalculator::partial_expectation(Money bid) const {
  SPOTBID_REQUIRE_NOT_NAN(bid.usd(), "DeadlineCalculator::partial_expectation: bid");
  counters().law_queries.increment();
  if (path_ == QueryPath::kOracle && empirical_ != nullptr)
    return naive_partial_expectation(*empirical_, bid.usd());
  return model_->partial_expectation(bid);
}

int DeadlineCalculator::required_slots(double share, Hours execution_time) const {
  SPOTBID_REQUIRE_PROB(share, "DeadlineCalculator::required_slots: share");
  SPOTBID_REQUIRE_FINITE(execution_time.hours(),
                         "DeadlineCalculator::required_slots: execution time");
  SPOTBID_EXPECT(execution_time.hours() >= 0.0,
                 "DeadlineCalculator::required_slots: execution time must be >= 0");
  // ceil with a relative guard so shares that land exactly on a slot
  // boundary (w = k t_k / W up to roundoff) do not demand a phantom slot.
  const double slots = share * execution_time.hours() / model_->slot_length().hours();
  return static_cast<int>(std::ceil(slots - 1e-9));
}

double DeadlineCalculator::miss_probability(Money bid, int need_slots) const {
  return binomial_miss_tail(horizon_, acceptance(bid), need_slots);
}

double DeadlineCalculator::completion_cdf(std::span<const Level> levels, Hours execution_time,
                                          Hours t) const {
  SPOTBID_REQUIRE_FINITE(t.hours(), "DeadlineCalculator::completion_cdf: t");
  counters().violation_evals.increment();
  const int slots_in_t = static_cast<int>(std::floor(t.hours() / model_->slot_length().hours()));
  double done = 1.0;
  for (const Level& level : levels) {
    const int need = required_slots(level.share, execution_time);
    if (need <= 0) continue;  // share rounds to zero slots: already done
    done *= 1.0 - binomial_miss_tail(slots_in_t, acceptance(level.bid), need);
  }
  return done;
}

double DeadlineCalculator::violation_probability(std::span<const Level> levels,
                                                 Hours execution_time) const {
  return 1.0 - completion_cdf(levels, execution_time, deadline_);
}

Money DeadlineCalculator::expected_spot_cost(std::span<const Level> levels,
                                             Hours execution_time) const {
  double usd = 0.0;
  for (const Level& level : levels) {
    const int need = required_slots(level.share, execution_time);
    if (need <= 0) continue;
    const double f = acceptance(level.bid);
    if (!(f > 0.0)) return Money{kInf};  // a needed level that can never win
    const double paid_per_hour = partial_expectation(level.bid) / f;  // eq. 9
    usd += static_cast<double>(need) * model_->slot_length().hours() * paid_per_hour;
  }
  return Money{usd};
}

}  // namespace spotbid::portfolio
