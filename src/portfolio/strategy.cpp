#include "spotbid/portfolio/strategy.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <span>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/numeric/optimize.hpp"

namespace spotbid::portfolio {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Slack on the violation-vs-epsilon comparison: the claimed violation is a
/// product of binomial tails assembled in floating point; a plan sitting
/// exactly on its budget must not flap infeasible over one ulp.
constexpr double kFeasibilitySlack = 1e-12;

/// The tilt family for splitting the epsilon budget across tranches
/// (strategy.hpp): lambda = 1 is the symmetric split, the others push the
/// budget toward the first / last tranche so the K bids spread out.
constexpr std::array<double, 3> kTiltLambdas = {0.25, 1.0, 4.0};

/// Bisection depth for the minimal-acceptance solve. 48 halvings of [0, 1]
/// put the answer within 2^-48 — far below the quantile grid's resolution.
constexpr int kAcceptanceBisections = 48;

struct StrategyCounters {
  metrics::Counter& optimizations;
  metrics::Counter& degenerate;
  metrics::Counter& tranche_solves;
};

StrategyCounters& counters() {
  static StrategyCounters c{
      metrics::Registry::global().counter("portfolio.optimizations"),
      metrics::Registry::global().counter("portfolio.degenerate"),
      metrics::Registry::global().counter("portfolio.tranche_solves"),
  };
  return c;
}

/// Smallest per-slot acceptance p with P(Bin(n, p) < m) <= budget. The tail
/// is monotone non-increasing in p, so plain bisection; callers guarantee
/// m <= n, which makes p = 1 (tail 0) always satisfy the budget.
double minimal_acceptance(int n, int m, double budget) {
  counters().tranche_solves.increment();
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < kAcceptanceBisections; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (binomial_miss_tail(n, mid, m) <= budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

/// One candidate plan from the inner solve, before the outer search picks.
struct Plan {
  std::array<Level, kMaxLevels> levels{};
  int level_count = 0;
  double violation = 0.0;
  double cost_usd = kInf;  ///< +inf marks an infeasible / unbuildable plan
};

}  // namespace

PortfolioStrategy::PortfolioStrategy(const bidding::SpotPriceModel& model, QueryPath path)
    : model_(&model), path_(path) {}

PortfolioDecision PortfolioStrategy::degenerate_single_bid(const PortfolioQuery& query) const {
  counters().degenerate.increment();
  const bidding::BidDecision single = query.mode == DegenerateMode::kOneTime
                                          ? bidding::one_time_bid(*model_, query.job)
                                          : bidding::persistent_bid(*model_, query.job);
  PortfolioDecision out;
  out.degenerate = true;
  out.backstop = model_->backstop();
  out.expected_cost = single.expected_cost;
  out.use_on_demand = single.use_on_demand;
  if (single.use_on_demand) {
    out.on_demand_share = 1.0;
    out.level_count = 0;
    out.violation = 0.0;  // the backstop never misses
  } else {
    out.on_demand_share = 0.0;
    out.level_count = 1;
    out.levels[0] = Level{single.bid, 1.0};
    // Report the tranche model's violation at the chosen bid when the
    // deadline spans at least one slot; a sub-slot deadline cannot be met
    // by any spot tranche.
    const double slots =
        std::floor(query.deadline.hours() / model_->slot_length().hours());
    if (slots >= 1.0 && slots <= static_cast<double>(kMaxHorizonSlots)) {
      const DeadlineCalculator calc{*model_, query.deadline, path_};
      out.violation =
          calc.violation_probability(std::span{out.levels.data(), 1}, query.job.execution_time);
    } else {
      out.violation = 1.0;
    }
  }
  out.feasible = out.violation <= query.epsilon + kFeasibilitySlack;
  return out;
}

PortfolioDecision PortfolioStrategy::optimize(const PortfolioQuery& query) const {
  SPOTBID_EXPECT(query.levels >= 1 && query.levels <= kMaxLevels,
                 "PortfolioStrategy: levels must be in [1, kMaxLevels]");
  SPOTBID_REQUIRE_FINITE(query.job.execution_time.hours(), "PortfolioStrategy: execution time");
  SPOTBID_EXPECT(query.job.execution_time.hours() > 0.0,
                 "PortfolioStrategy: execution time must be > 0");
  SPOTBID_REQUIRE_FINITE(query.deadline.hours(), "PortfolioStrategy: deadline");
  SPOTBID_EXPECT(query.deadline.hours() >= query.job.execution_time.hours(),
                 "PortfolioStrategy: deadline must be >= execution time");
  SPOTBID_REQUIRE_NOT_NAN(query.epsilon, "PortfolioStrategy: epsilon");
  SPOTBID_EXPECT(query.epsilon >= 0.0, "PortfolioStrategy: epsilon must be >= 0");
  counters().optimizations.increment();

  // K = 1 without a real deadline constraint IS the paper's single-bid
  // problem: defer to Prop. 4 / Prop. 5 verbatim (regression-tested
  // bit-match).
  if (query.levels == 1 && query.epsilon >= 1.0) return degenerate_single_bid(query);

  const Money backstop = model_->backstop();
  const Hours execution = query.job.execution_time;
  const double all_on_demand_usd = backstop.usd() * execution.hours();

  const auto all_on_demand = [&]() {
    PortfolioDecision out;
    out.level_count = 0;
    out.on_demand_share = 1.0;
    out.expected_cost = Money{all_on_demand_usd};
    out.violation = 0.0;
    out.feasible = true;
    out.use_on_demand = true;
    out.backstop = backstop;
    return out;
  };

  const double slots = std::floor(query.deadline.hours() / model_->slot_length().hours());
  // epsilon = 0 admits no spot risk at all, and a sub-slot horizon gives
  // spot tranches nothing to win: the backstop carries the whole job.
  if (query.epsilon <= 0.0 || slots < 1.0) return all_on_demand();
  SPOTBID_EXPECT(slots <= static_cast<double>(kMaxHorizonSlots),
                 "PortfolioStrategy: deadline spans more than kMaxHorizonSlots slots");

  const DeadlineCalculator calc{*model_, query.deadline, path_};
  const int horizon = calc.horizon_slots();
  const int k_levels = query.levels;
  const double eps = query.epsilon;
  const double log_survive = std::log1p(-std::min(eps, 1.0));  // log(1 - eps), -inf when eps >= 1

  // Inner solve (strategy.hpp): given the backstop share and a tilt, build
  // the cheapest plan whose per-tranche budgets multiply out to eps.
  const auto solve_inner = [&](double w_od, double lambda) {
    Plan plan;
    const double spot_share = 1.0 - w_od;
    if (spot_share <= 1e-12) {
      plan.level_count = 0;
      plan.violation = 0.0;
      plan.cost_usd = all_on_demand_usd;
      return plan;
    }
    double tilt_total = 0.0;
    double tilt = 1.0;
    for (int k = 0; k < k_levels; ++k, tilt *= lambda) tilt_total += tilt;
    tilt = 1.0;
    for (int k = 0; k < k_levels; ++k, tilt *= lambda) {
      const double share = spot_share / static_cast<double>(k_levels);
      const int need = calc.required_slots(share, execution);
      if (need > horizon) return plan;  // tranche cannot fit: +inf stands
      if (need <= 0) {
        plan.levels[plan.level_count++] = Level{model_->min_bid(), share};
        continue;
      }
      // eps_k = 1 - (1 - eps)^{u_k} with u_k = tilt / tilt_total, so the
      // survival probabilities multiply back to exactly 1 - eps.
      const double budget = -std::expm1((tilt / tilt_total) * log_survive);
      const double p_star = minimal_acceptance(horizon, need, budget);
      const Money bid = std::clamp(model_->quantile(std::min(p_star, 1.0)), model_->min_bid(),
                                   model_->max_bid());
      plan.levels[plan.level_count++] = Level{bid, share};
    }
    const std::span<const Level> built{plan.levels.data(),
                                       static_cast<std::size_t>(plan.level_count)};
    // Feasibility is judged on the *achieved* violation: quantile rounding
    // and the max_bid cap can land off the per-tranche budgets.
    plan.violation = calc.violation_probability(built, execution);
    if (plan.violation > eps + kFeasibilitySlack) return plan;  // cost stays +inf
    const Money spot = calc.expected_spot_cost(built, execution);
    if (!std::isfinite(spot.usd())) return plan;
    plan.cost_usd = spot.usd() + w_od * all_on_demand_usd;
    return plan;
  };

  // Outer search: a coarse grid-plus-golden sweep over the backstop share
  // for each tilt, with w_0 = 1 always in the running as the feasible
  // fallback. Loose tolerances on purpose — the objective is piecewise
  // from the ceil() in required_slots, and serve latency matters more than
  // the last fraction of a cent.
  const numeric::MinimizeOptions options{.x_tolerance = 1e-3, .max_iterations = 32};
  double best_w_od = 1.0;
  double best_lambda = kTiltLambdas.front();
  double best_cost = all_on_demand_usd;
  for (const double lambda : kTiltLambdas) {
    const auto objective = [&](double w_od) { return solve_inner(w_od, lambda).cost_usd; };
    const numeric::MinimizeResult found =
        numeric::grid_then_golden(objective, 0.0, 1.0, /*n_grid=*/8, options);
    if (found.f < best_cost) {
      best_cost = found.f;
      best_w_od = found.x;
      best_lambda = lambda;
    }
  }

  if (!(best_cost < all_on_demand_usd)) return all_on_demand();

  const Plan best = solve_inner(best_w_od, best_lambda);
  PortfolioDecision out;
  out.levels = best.levels;
  out.level_count = best.level_count;
  out.on_demand_share = best_w_od;
  out.expected_cost = Money{best.cost_usd};
  out.violation = best.violation;
  out.feasible = best.violation <= eps + kFeasibilitySlack;
  out.use_on_demand = false;
  out.backstop = backstop;
  return out;
}

}  // namespace spotbid::portfolio
