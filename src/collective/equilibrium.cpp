#include "spotbid/collective/equilibrium.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/core/parallel.hpp"
#include "spotbid/dist/empirical.hpp"
#include "spotbid/numeric/optimize.hpp"
#include "spotbid/numeric/stats.hpp"
#include "spotbid/provider/calibration.hpp"

namespace spotbid::collective {

namespace {

/// Pricing-kernel telemetry (docs/METRICS.md, `pricer.*`): which path
/// optimal_price took per slot and how many candidate prices the exact
/// sweep scored. Counts are pure functions of the work — inside the
/// metrics determinism contract.
struct PricerCounters {
  metrics::Counter& knot_sweep_slots;
  metrics::Counter& knot_sweep_candidates;
  metrics::Counter& grid_slots;
};

PricerCounters& pricer_counters() {
  static PricerCounters counters{
      metrics::Registry::global().counter("pricer.knot_sweep.slots"),
      metrics::Registry::global().counter("pricer.knot_sweep.candidates"),
      metrics::Registry::global().counter("pricer.grid.slots"),
  };
  return counters;
}

}  // namespace

GeneralizedPricer::GeneralizedPricer(Money pi_bar, Money pi_min, double beta, double theta)
    : pi_bar_(pi_bar), pi_min_(pi_min), beta_(beta), theta_(theta) {
  SPOTBID_REQUIRE_FINITE(pi_bar.usd(), "GeneralizedPricer: pi_bar");
  SPOTBID_REQUIRE_FINITE(pi_min.usd(), "GeneralizedPricer: pi_min");
  SPOTBID_REQUIRE_FINITE(beta, "GeneralizedPricer: beta");
  SPOTBID_EXPECT(pi_bar.usd() > 0.0, "GeneralizedPricer: pi_bar must be > 0");
  SPOTBID_EXPECT(pi_min.usd() >= 0.0 && pi_min < pi_bar,
                 "GeneralizedPricer: need 0 <= pi_min < pi_bar");
  SPOTBID_EXPECT(beta > 0.0, "GeneralizedPricer: beta must be > 0");
  SPOTBID_EXPECT(theta > 0.0 && theta <= 1.0, "GeneralizedPricer: theta must be in (0, 1]");
}

double GeneralizedPricer::accepted_bids(const dist::Distribution& bids, Money pi,
                                        double demand) const {
  // Bids at or above the spot price are accepted: N = L * P(bid >= pi)
  // = L * (1 - P(bid < pi)). cdf_left is the first-class left limit — the
  // former cdf(pi - 1e-12) epsilon hack undercounted ties whenever the
  // atom sat within an ulp of pi (or pi - 1e-12 rounded back to pi).
  const double below = bids.cdf_left(pi.usd());
  return demand * std::clamp(1.0 - below, 0.0, 1.0);
}

double GeneralizedPricer::objective(const dist::Distribution& bids, Money pi,
                                    double demand) const {
  const double n = accepted_bids(bids, pi, demand);
  return beta_ * std::log1p(n) + pi.usd() * n;
}

Money GeneralizedPricer::optimal_price(const dist::Distribution& bids, double demand) const {
  SPOTBID_REQUIRE_FINITE(demand, "GeneralizedPricer: demand");
  SPOTBID_EXPECT(demand > 0.0, "GeneralizedPricer: demand must be > 0");
  // Empirical bid laws (the collective iteration's case, re-solved per
  // slot) get the exact knot sweep; other families keep the dense grid.
  if (const auto* ecdf = dynamic_cast<const dist::Empirical*>(&bids)) {
    return knot_sweep_price(*ecdf, demand);
  }
  pricer_counters().grid_slots.increment();
  const auto negated = [&](double pi) { return -objective(bids, Money{pi}, demand); };
  const auto best = numeric::grid_then_golden(negated, pi_min_.usd(), pi_bar_.usd(), 1024);
  return Money{std::clamp(best.x, pi_min_.usd(), pi_bar_.usd())};
}

Money GeneralizedPricer::knot_sweep_price(const dist::Empirical& bids, double demand) const {
  // Exact maximization of g(pi) = beta log(1 + N(pi)) + pi N(pi) over
  // [pi_min, pi_bar] against the interpolated ECDF, where
  // N(pi) = demand * (1 - F(pi-)) is piecewise LINEAR between knots
  // (N = a - b pi on each segment). On a segment's interior g is smooth
  // with derivative g'(pi) = -beta b / (1 + a - b pi) + a - 2 b pi, so
  // g' = 0 reduces to the quadratic
  //     2 b^2 pi^2 - b (3a + 2) pi + (a (1 + a) - beta b) = 0.
  // The global maximum is therefore attained at a knot, a band endpoint,
  // or one of these closed-form stationary points — the candidate set
  // below is exhaustive (optimality argument in docs/PERF.md), which makes
  // the sweep provably no worse than any grid. Each candidate's F(pi-) is
  // known from its segment, so it is computed in O(1) with the EXACT
  // expressions Empirical::cdf/cdf_left would use (knot i: cum_[i], with
  // cum_.back() == 1.0 by construction and 0 at the atom-bearing minimum;
  // segment interior: the same t-interpolation) — the score is therefore
  // bit-identical to what a grid evaluation of objective() at that price
  // would produce, and no per-candidate binary search is paid.
  const std::vector<double>& x = bids.knots();
  const std::vector<double>& cum = bids.knot_cdf();
  const double lo = pi_min_.usd();
  const double hi = pi_bar_.usd();

  double best_pi = lo;
  double best_g = -std::numeric_limits<double>::infinity();
  std::uint64_t evaluated = 0;
  const auto consider = [&](double pi, double f_left) {
    if (!(pi >= lo && pi <= hi)) return;
    const double n = demand * std::clamp(1.0 - f_left, 0.0, 1.0);
    const double g = beta_ * std::log1p(n) + pi * n;
    ++evaluated;
    if (g > best_g) {
      best_g = g;
      best_pi = pi;
    }
  };

  consider(lo, bids.cdf_left(lo));
  consider(hi, bids.cdf_left(hi));
  for (std::size_t i = 0; i < x.size(); ++i) consider(x[i], i == 0 ? 0.0 : cum[i]);

  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double seg_lo = std::max(x[i], lo);
    const double seg_hi = std::min(x[i + 1], hi);
    if (!(seg_hi > seg_lo)) continue;  // segment outside the price band
    const double s = (cum[i + 1] - cum[i]) / (x[i + 1] - x[i]);
    const double b = demand * s;
    if (!(b > 0.0)) continue;
    const double a = demand * ((1.0 - cum[i]) + s * x[i]);
    const double qa = 2.0 * b * b;
    const double qb = -b * (3.0 * a + 2.0);
    const double qc = a * (1.0 + a) - beta_ * b;
    const double disc = qb * qb - 4.0 * qa * qc;
    if (!(disc >= 0.0)) continue;  // no interior stationary point
    const double sq = std::sqrt(disc);
    const double root1 = (-qb - sq) / (2.0 * qa);
    const double root2 = (-qb + sq) / (2.0 * qa);
    // Strictly inside (x_i, x_{i+1}): F(pi-) = F(pi), interpolated with
    // Empirical::cdf's own expression.
    const auto interior_f = [&](double pi) {
      const double t = (pi - x[i]) / (x[i + 1] - x[i]);
      return cum[i] + t * (cum[i + 1] - cum[i]);
    };
    if (root1 > seg_lo && root1 < seg_hi) consider(root1, interior_f(root1));
    if (root2 > seg_lo && root2 < seg_hi) consider(root2, interior_f(root2));
  }

  auto& counters = pricer_counters();
  counters.knot_sweep_slots.increment();
  counters.knot_sweep_candidates.add(evaluated);
  return Money{best_pi};
}

std::vector<RoundSummary> iterate_best_response(const ec2::InstanceType& type,
                                                const PopulationConfig& config) {
  SPOTBID_EXPECT(config.users >= 2, "iterate_best_response: need >= 2 users");
  SPOTBID_EXPECT(!config.recovery_seconds.empty(), "iterate_best_response: empty job mix");
  SPOTBID_EXPECT(config.rounds >= 1 && config.slots_per_round >= 100,
                 "iterate_best_response: degenerate round configuration");

  const auto base_model = provider::calibrated_model(type);
  const auto arrivals = provider::calibrated_arrivals(type);
  const GeneralizedPricer pricer{base_model.pi_bar(), base_model.pi_min(), base_model.beta(),
                                 base_model.theta()};

  // Round 0 price law: the single-user calibrated law.
  dist::DistributionPtr price_law = provider::calibrated_price_distribution(type);

  std::vector<RoundSummary> rounds;
  std::vector<double> previous_bids;
  numeric::Rng rng{config.seed};

  for (int round = 0; round < config.rounds; ++round) {
    // 1. Users best-respond to the current price law. Each user's
    // Proposition-5 bid is a pure function of (price law, job), so the
    // population sweep fans out over the parallel layer; results land in
    // user order, keeping the round bit-identical for any thread count.
    const bidding::SpotPriceModel model{price_law, type.on_demand, trace::kDefaultSlotLength};
    const std::vector<double> bids = core::parallel_map(
        static_cast<std::size_t>(config.users), [&](std::size_t u) {
          const double tr = config.recovery_seconds[u % config.recovery_seconds.size()];
          const bidding::JobSpec job{config.execution_time, Hours::from_seconds(tr)};
          return bidding::persistent_bid(model, job).bid.usd();
        });
    // Users are never bit-identical in practice; a deterministic +-0.1%
    // spread keeps the empirical bid law non-degenerate when every
    // strategy lands on the same price.
    std::vector<double> jittered = bids;
    for (std::size_t u = 0; u < jittered.size(); ++u) {
      const double wiggle = 1.0 + 0.001 * (static_cast<double>(u % 21) - 10.0) / 10.0;
      jittered[u] *= wiggle;
    }
    auto bid_distribution = std::make_shared<dist::Empirical>(jittered);

    // 2. The provider prices against F_b over the eq.-4 demand recursion.
    double demand = std::max(base_model.equilibrium_demand(arrivals->mean()), 1e-6);
    numeric::RunningStats price_stats;
    std::vector<double> prices;
    prices.reserve(static_cast<std::size_t>(config.slots_per_round));
    for (int slot = 0; slot < config.slots_per_round; ++slot) {
      const Money pi = pricer.optimal_price(*bid_distribution, demand);
      const double n = pricer.accepted_bids(*bid_distribution, pi, demand);
      demand = std::max(demand - pricer.theta() * n + std::max(arrivals->sample(rng), 0.0),
                        1e-6);
      prices.push_back(pi.usd());
      price_stats.add(pi.usd());
    }

    // 3. Summarize and roll the realized prices into the next round's law.
    RoundSummary summary;
    summary.mean_bid_usd = numeric::mean(bids);
    summary.mean_price_usd = price_stats.mean();
    summary.p90_price_usd = numeric::quantile(prices, 0.90);
    if (!previous_bids.empty()) {
      double movement = 0.0;
      for (std::size_t i = 0; i < bids.size(); ++i)
        movement = std::max(movement, std::abs(bids[i] - previous_bids[i]));
      summary.max_bid_movement_usd = movement;
    }
    rounds.push_back(summary);
    previous_bids = bids;

    // Damped law update: blend ~10% of draws from the previous round's law
    // into the realized prices. This stabilizes the best-response iteration
    // and keeps the empirical law non-degenerate when the provider's best
    // response is a constant price (bids piled on a few atoms).
    std::vector<double> blended = prices;
    const int carry = std::max(config.slots_per_round / 10, 2);
    for (int i = 0; i < carry; ++i) blended.push_back(price_law->sample(rng));
    price_law = std::make_shared<dist::Empirical>(blended);
  }
  return rounds;
}

}  // namespace spotbid::collective
