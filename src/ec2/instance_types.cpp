#include "spotbid/ec2/instance_types.hpp"

#include <algorithm>
#include <array>

namespace spotbid::ec2 {

namespace {

/// Calibration rule for types Figure 3 does not cover: beta scales with the
/// on-demand price (the utilization weight is a dollar quantity), theta =
/// 0.02 ("few instances finish in each time slot"); alpha, the floor level,
/// the floor occupancy, and the price stickiness vary mildly per type the
/// way the real 2014 markets did (each type's market cleared independently).
MarketCalibration scaled_calibration(double on_demand_usd, double alpha,
                                     double min_price_fraction, double floor_mass,
                                     double persistence) {
  return MarketCalibration{1.7 * on_demand_usd, 0.02,      alpha,
                           min_price_fraction,  floor_mass, persistence};
}

const std::array<InstanceType, 10>& catalog() {
  static const std::array<InstanceType, 10> kTypes = {{
      // Figure-3 types with the paper's fitted (beta, theta, alpha):
      {"m3.xlarge", "m3", 4, 15.0, "1x32", Money{0.280},
       MarketCalibration{0.6, 0.02, 5.0, 0.09}},
      {"m3.2xlarge", "m3", 8, 30.0, "2x80", Money{0.560},
       MarketCalibration{1.2, 0.02, 8.0, 0.09}},
      {"c3.xlarge", "c3", 4, 7.5, "2x40", Money{0.210},
       MarketCalibration{0.3, 0.02, 9.5, 0.09}},
      {"m1.xlarge", "m1", 4, 15.0, "4x420 HDD", Money{0.350},
       MarketCalibration{0.3, 0.02, 5.2, 0.09}},
      // Experiment types (Table 3, Figures 5-6) with the scaling rule:
      {"r3.xlarge", "r3", 4, 30.5, "1x80", Money{0.350},
       scaled_calibration(0.350, 5.0, 0.090, 0.80, 0.90)},
      {"r3.2xlarge", "r3", 8, 61.0, "1x160", Money{0.700},
       scaled_calibration(0.700, 5.5, 0.085, 0.78, 0.92)},
      {"r3.4xlarge", "r3", 16, 122.0, "1x320", Money{1.400},
       scaled_calibration(1.400, 4.5, 0.095, 0.82, 0.90)},
      {"c3.4xlarge", "c3", 16, 30.0, "2x160", Money{0.840},
       scaled_calibration(0.840, 6.0, 0.088, 0.76, 0.88)},
      {"c3.8xlarge", "c3", 32, 60.0, "2x320", Money{1.680},
       scaled_calibration(1.680, 5.2, 0.092, 0.84, 0.91)},
      {"c3.2xlarge", "c3", 8, 15.0, "2x80", Money{0.420},
       scaled_calibration(0.420, 5.0, 0.090, 0.80, 0.90)},
  }};
  return kTypes;
}

}  // namespace

std::span<const InstanceType> all_types() { return catalog(); }

std::optional<InstanceType> find_type(std::string_view name) {
  const auto& types = catalog();
  const auto it = std::find_if(types.begin(), types.end(),
                               [&](const InstanceType& t) { return t.name == name; });
  if (it == types.end()) return std::nullopt;
  return *it;
}

const InstanceType& require_type(std::string_view name) {
  const auto& types = catalog();
  const auto it = std::find_if(types.begin(), types.end(),
                               [&](const InstanceType& t) { return t.name == name; });
  if (it == types.end())
    throw InvalidArgument{"unknown instance type: " + std::string{name}};
  return *it;
}

std::vector<InstanceType> figure3_types() {
  return {require_type("m3.xlarge"), require_type("m3.2xlarge"), require_type("c3.xlarge"),
          require_type("m1.xlarge")};
}

std::vector<InstanceType> experiment_types() {
  return {require_type("r3.xlarge"), require_type("r3.2xlarge"), require_type("r3.4xlarge"),
          require_type("c3.4xlarge"), require_type("c3.8xlarge")};
}

std::vector<MapReduceSetting> mapreduce_settings() {
  // The paper does not list the exact type pairs; these five pairings follow
  // its stated policy: a modest master ("does not require a high-performance
  // instance") and compute-optimized slaves.
  return {
      {"C1", require_type("m3.xlarge"), require_type("c3.4xlarge")},
      {"C2", require_type("m3.xlarge"), require_type("c3.8xlarge")},
      {"C3", require_type("c3.xlarge"), require_type("c3.4xlarge")},
      {"C4", require_type("r3.xlarge"), require_type("c3.8xlarge")},
      {"C5", require_type("m1.xlarge"), require_type("c3.4xlarge")},
  };
}

}  // namespace spotbid::ec2
