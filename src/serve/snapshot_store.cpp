#include "spotbid/serve/snapshot_store.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <unordered_map>
#include <utility>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"

namespace spotbid::serve {

namespace {

struct StoreMetrics {
  metrics::Counter& publishes;
  metrics::Counter& lookups;
  metrics::Counter& misses;
};

StoreMetrics& sm() {
  static StoreMetrics m{
      metrics::Registry::global().counter("serve.store.publishes"),
      // Lookup tallies live under .sched.: through the service they count
      // one find() per key-group per tick, which depends on micro-batch
      // grouping and hence on worker scheduling.
      metrics::Registry::global().counter("serve.store.sched.lookups"),
      metrics::Registry::global().counter("serve.store.sched.misses"),
  };
  return m;
}

/// Heterogeneous string hashing so find(string_view) never allocates.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Spin-locked shared_ptr cell — the same design as libstdc++'s
/// std::atomic<std::shared_ptr> (a lock bit guarding a pointer + refcount
/// pair), except the reader path unlocks with release. libstdc++ 12's
/// _Sp_atomic::load unlocks with memory_order_relaxed, which leaves the
/// reader's critical-section read formally unordered against the next
/// writer's swap — a data race under the ISO model that ThreadSanitizer
/// reports. Critical sections are a pointer copy or swap, never a model
/// rebuild, so the lock is held for a few instructions at most.
template <typename T>
class AtomicPtr {
 public:
  AtomicPtr() = default;
  explicit AtomicPtr(std::shared_ptr<T> initial) : value_(std::move(initial)) {}

  [[nodiscard]] std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> copy = value_;
    unlock();
    return copy;
  }

  void store(std::shared_ptr<T> next) {
    lock();
    value_.swap(next);
    unlock();
    // The displaced value (now in `next`) is released outside the lock, so
    // a snapshot's destructor never runs inside a reader's spin window.
  }

 private:
  void lock() const {
    while (flag_.test_and_set(std::memory_order_acquire))
      while (flag_.test(std::memory_order_relaxed)) {
      }
  }
  void unlock() const { flag_.clear(std::memory_order_release); }

  mutable std::atomic_flag flag_;
  std::shared_ptr<T> value_;
};

}  // namespace

/// One shard: an atomic pointer to an immutable key -> slot map. Slots are
/// stable across map rebuilds (shared_ptr members of every map version), so
/// an epoch swap for an existing key touches one atomic, not the map.
struct SnapshotStore::Shard {
  struct Slot {
    AtomicPtr<const ModelSnapshot> snapshot;
  };
  using Map =
      std::unordered_map<std::string, std::shared_ptr<Slot>, StringHash, std::equal_to<>>;

  AtomicPtr<const Map> map{std::make_shared<const Map>()};
  /// Serializes writers only; the read path never touches it.
  // spotbid-lint: allow(S-mutex) writer-side publication lock; find() never takes it
  std::mutex writer;
};

SnapshotStore::SnapshotStore(std::size_t shards) {
  const std::size_t count = std::bit_ceil(std::max<std::size_t>(shards, 1));
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shards_.push_back(std::make_unique<Shard>());
}

SnapshotStore::~SnapshotStore() = default;

SnapshotStore::Shard& SnapshotStore::shard_for(std::string_view key) const {
  // shard count is a power of two, so masking the hash is a uniform pick.
  const std::size_t h = std::hash<std::string_view>{}(key);
  return *shards_[h & (shards_.size() - 1)];
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::find(std::string_view key) const {
  sm().lookups.increment();
  const Shard& shard = shard_for(key);
  const std::shared_ptr<const Shard::Map> map = shard.map.load();
  const auto it = map->find(key);
  if (it == map->end()) {
    sm().misses.increment();
    return nullptr;
  }
  return it->second->snapshot.load();
}

std::uint64_t SnapshotStore::publish(std::shared_ptr<ModelSnapshot> snapshot) {
  SPOTBID_EXPECT(snapshot != nullptr, "SnapshotStore::publish: snapshot must not be null");
  SPOTBID_EXPECT(snapshot->epoch() == 0,
                 "SnapshotStore::publish: snapshot was already published");

  Shard& shard = shard_for(snapshot->key());
  const std::lock_guard<std::mutex> lock{shard.writer};

  // Stamp the store-wide epoch before the snapshot becomes visible, so no
  // reader can ever observe a published snapshot with epoch 0.
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  snapshot->epoch_.store(epoch, std::memory_order_relaxed);

  std::string key = snapshot->key();
  const std::shared_ptr<const Shard::Map> current = shard.map.load();
  if (const auto it = current->find(key); it != current->end()) {
    // Existing key: epoch swap on the stable slot. Readers holding the old
    // snapshot keep it alive through their own shared_ptr.
    it->second->snapshot.store(std::move(snapshot));
  } else {
    // New key: copy-on-write map rebuild (slots shared, so concurrent epoch
    // swaps on other keys remain visible through both map versions).
    auto next = std::make_shared<Shard::Map>(*current);
    auto slot = std::make_shared<Shard::Slot>();
    slot->snapshot.store(std::move(snapshot));
    next->emplace(std::move(key), std::move(slot));
    shard.map.store(std::shared_ptr<const Shard::Map>{std::move(next)});
  }
  sm().publishes.increment();
  return epoch;
}

std::size_t SnapshotStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_)
    total += shard->map.load()->size();
  return total;
}

std::vector<std::string> SnapshotStore::keys() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    const auto map = shard->map.load();
    for (const auto& [key, slot] : *map) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spotbid::serve
