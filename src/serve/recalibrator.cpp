#include "spotbid/serve/recalibrator.hpp"

#include <utility>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"

namespace spotbid::serve {

namespace {

metrics::Counter& refreshes() {
  static metrics::Counter& c = metrics::Registry::global().counter("serve.store.refreshes");
  return c;
}

}  // namespace

Recalibrator::Recalibrator(SnapshotStore& store, std::chrono::milliseconds interval)
    : store_(&store), interval_(interval) {
  SPOTBID_EXPECT(interval.count() > 0, "Recalibrator: interval must be positive");
}

Recalibrator::~Recalibrator() { stop(); }

void Recalibrator::add_source(Builder builder) {
  SPOTBID_EXPECT(builder != nullptr, "Recalibrator::add_source: builder must be callable");
  SPOTBID_EXPECT(!thread_.joinable(), "Recalibrator::add_source: must precede start()");
  builders_.push_back(std::move(builder));
}

void Recalibrator::refresh_now() {
  for (const Builder& build : builders_) {
    if (std::shared_ptr<ModelSnapshot> snapshot = build()) {
      store_->publish(std::move(snapshot));
      refreshes().increment();
    }
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

void Recalibrator::start() {
  if (thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = false;
  }
  thread_ = std::thread{[this] { loop(); }};
}

void Recalibrator::stop() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Recalibrator::loop() {
  std::unique_lock<std::mutex> lock{mutex_};
  while (!stopping_) {
    // Wait first: the caller seeds synchronously via refresh_now(), so the
    // background cadence starts one interval after start().
    if (wake_.wait_for(lock, interval_, [&] { return stopping_; })) return;
    // Builders run unlocked: they may rebuild models over large traces, and
    // stop() must be able to set the flag meanwhile (it is checked again at
    // the top of the loop).
    lock.unlock();
    refresh_now();
    lock.lock();
  }
}

}  // namespace spotbid::serve
