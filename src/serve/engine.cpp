#include "spotbid/serve/engine.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <exception>
#include <limits>
#include <string>
#include <vector>

#include "spotbid/bidding/cost.hpp"
#include "spotbid/bidding/strategies.hpp"
#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/dist/empirical.hpp"
#include "spotbid/portfolio/strategy.hpp"

namespace spotbid::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr std::size_t kKindCount = 6;
constexpr std::size_t kStatusCount = 6;

/// Deterministic per-kind / per-status tallies: counts depend only on the
/// executed request set, never on worker count or batch boundaries.
metrics::Counter& request_counter(Kind kind) {
  static const std::array<metrics::Counter*, kKindCount> counters = [] {
    std::array<metrics::Counter*, kKindCount> c{};
    for (std::size_t i = 0; i < kKindCount; ++i)
      c[i] = &metrics::Registry::global().counter(
          "serve.requests." + std::string{kind_name(static_cast<Kind>(i))});
    return c;
  }();
  return *counters[static_cast<std::size_t>(kind)];
}

metrics::Counter& status_counter(Status status) {
  static const std::array<metrics::Counter*, kStatusCount> counters = [] {
    std::array<metrics::Counter*, kStatusCount> c{};
    for (std::size_t i = 0; i < kStatusCount; ++i)
      c[i] = &metrics::Registry::global().counter(
          "serve.responses." + std::string{status_name(static_cast<Status>(i))});
    return c;
  }();
  return *counters[static_cast<std::size_t>(status)];
}

Response base_response(const ModelSnapshot& snapshot, const Request& request) {
  Response r;
  r.kind = request.kind;
  r.epoch = snapshot.epoch();
  return r;
}

Response invalid_response(const ModelSnapshot& snapshot, const Request& request) {
  Response r = base_response(snapshot, request);
  r.status = Status::kInvalid;
  return r;
}

// ---------------------------------------------------------------------------
// Per-kind validation. Shared by the scalar and batch paths so both classify
// a request identically, and run BEFORE any model query so malformed
// parameters (NaN bids, negative times) surface as kInvalid instead of
// tripping the model-layer contracts.

bool run_length_valid(const Request& q) { return std::isfinite(q.bid.usd()); }

bool persistent_job_valid(const bidding::JobSpec& job) {
  return std::isfinite(job.execution_time.hours()) &&
         std::isfinite(job.recovery_time.hours()) && job.recovery_time.hours() >= 0.0 &&
         job.execution_time >= job.recovery_time;
}

bool expected_cost_valid(const Request& q) {
  if (!std::isfinite(q.bid.usd())) return false;
  if (!(std::isfinite(q.job.execution_time.hours()) && q.job.execution_time.hours() >= 0.0))
    return false;
  return q.mode == BidMode::kOneTime || persistent_job_valid(q.job);
}

bool feasibility_valid(const Request& q) {
  return std::isfinite(q.bid.usd()) && persistent_job_valid(q.job);
}

bool optimal_bid_valid(const Request& q) {
  if (!(std::isfinite(q.job.execution_time.hours()) &&
        std::isfinite(q.job.recovery_time.hours())))
    return false;
  if (q.mode == BidMode::kOneTime) return q.job.execution_time.hours() > 0.0;
  // persistent_bid's eq.-13 precondition: t_s > t_r >= 0.
  return q.job.recovery_time.hours() >= 0.0 && q.job.execution_time > q.job.recovery_time;
}

bool provider_price_valid(const Request& q) {
  return std::isfinite(q.demand) && q.demand > 0.0;
}

bool portfolio_valid(const Request& q) {
  if (!(std::isfinite(q.job.execution_time.hours()) && q.job.execution_time.hours() > 0.0))
    return false;
  if (!(std::isfinite(q.job.recovery_time.hours()) && q.job.recovery_time.hours() >= 0.0))
    return false;
  if (!(std::isfinite(q.deadline.hours()) && q.deadline >= q.job.execution_time)) return false;
  if (std::isnan(q.epsilon) || q.epsilon < 0.0) return false;
  if (q.levels < 1 || q.levels > kMaxPortfolioLevels) return false;
  // The K=1, epsilon>=1 degeneration answers with Prop. 4/5, so it inherits
  // their preconditions (persistent_bid needs t_s > t_r).
  if (q.levels == 1 && q.epsilon >= 1.0 && q.mode == BidMode::kPersistent &&
      !(q.job.execution_time > q.job.recovery_time))
    return false;
  return true;
}

// ---------------------------------------------------------------------------
// Closed-form arithmetic shared by BOTH execution paths. Each helper takes
// the model queries (f = F(bid), a = A(bid)) as inputs; the scalar path
// computes them per request, the batch path through the one-sweep batch
// query plane — which is bit-identical by PR 4's contract, so routing both
// paths through these helpers is what makes execute_batch bit-identical to
// execute_one. The expressions mirror src/bidding/cost.cpp term for term.

Response answer_run_length(const ModelSnapshot& snapshot, const Request& q, double f) {
  Response r = base_response(snapshot, q);
  r.acceptance = f;
  // eq. 8: t_k / (1 - F(p)); never interrupted at F(p) = 1.
  r.expected_hours = f >= 1.0
                         ? Hours{kInf}
                         : Hours{snapshot.model().slot_length().hours() / (1.0 - f)};
  r.status = Status::kOk;
  return r;
}

/// eq. 13 busy time off precomputed F(p); +infinity when infeasible.
Hours busy_time(const ModelSnapshot& snapshot, const bidding::JobSpec& job, double f) {
  const double r = job.recovery_time / snapshot.model().slot_length();
  const double denom = 1.0 - r * (1.0 - f);
  if (!(denom > 0.0)) return Hours{kInf};
  return Hours{(job.execution_time - job.recovery_time).hours() / denom};
}

Response answer_expected_cost(const ModelSnapshot& snapshot, const Request& q, double f,
                              double a) {
  Response r = base_response(snapshot, q);
  r.acceptance = f;
  r.bid = q.bid;
  if (q.mode == BidMode::kOneTime) {
    // eq. 10: t_s * A(p)/F(p); the job occupies exactly t_s when it runs.
    r.expected_cost =
        !(f > 0.0) ? Money{kInf} : Money{a / f} * q.job.execution_time;
    r.expected_hours = q.job.execution_time;
  } else {
    // eq. 15: busy * A(p)/F(p); completion = busy / F(p).
    const Hours busy = busy_time(snapshot, q.job, f);
    if (!(f > 0.0)) {
      r.expected_cost = Money{kInf};
      r.expected_hours = Hours{kInf};
    } else if (!std::isfinite(busy.hours())) {
      r.expected_cost = Money{kInf};
      r.expected_hours = busy;
    } else {
      r.expected_cost = Money{a / f} * busy;
      r.expected_hours = Hours{busy.hours() / f};
    }
  }
  r.status = Status::kOk;
  return r;
}

Response answer_feasibility(const ModelSnapshot& snapshot, const Request& q, double f) {
  Response r = base_response(snapshot, q);
  r.acceptance = f;
  r.bid = q.bid;
  const Hours busy = busy_time(snapshot, q.job, f);
  // eq. 14 is exactly "the eq.-13 denominator is positive".
  r.feasible = std::isfinite(busy.hours());
  r.expected_hours = busy;
  r.status = Status::kOk;
  return r;
}

Response answer_optimal_bid(const ModelSnapshot& snapshot, const Request& q) {
  Response r = base_response(snapshot, q);
  const bidding::BidDecision d = q.mode == BidMode::kOneTime
                                     ? bidding::one_time_bid(snapshot.model(), q.job)
                                     : bidding::persistent_bid(snapshot.model(), q.job);
  r.bid = d.bid;
  r.expected_cost = d.expected_cost;
  r.expected_hours = d.expected_completion;
  r.acceptance = d.acceptance;
  r.use_on_demand = d.use_on_demand;
  r.status = Status::kOk;
  return r;
}

Response answer_provider_price(const ModelSnapshot& snapshot, const Request& q) {
  Response r = base_response(snapshot, q);
  r.price = snapshot.provider().optimal_price(q.demand);
  r.status = Status::kOk;
  return r;
}

/// serve.portfolio.* telemetry (docs/METRICS.md): pure functions of the
/// executed request set — inside the determinism contract like every other
/// serve.* metric.
struct PortfolioServeMetrics {
  metrics::Histogram& levels;
  metrics::Counter& on_demand_fallback;
  metrics::Counter& degenerate;
};

PortfolioServeMetrics& portfolio_metrics() {
  static constexpr std::array<double, 5> kLevelBounds = {1.5, 2.5, 4.5, 8.5, 16.5};
  static PortfolioServeMetrics m{
      metrics::Registry::global().histogram("serve.portfolio.levels", kLevelBounds),
      metrics::Registry::global().counter("serve.portfolio.on_demand_fallback"),
      metrics::Registry::global().counter("serve.portfolio.degenerate"),
  };
  return m;
}

Response answer_portfolio(const ModelSnapshot& snapshot, const Request& q) {
  // Horizon cap: checkable only with the snapshot's slot length in hand,
  // hence here rather than in portfolio_valid.
  const double slots =
      std::floor(q.deadline.hours() / snapshot.model().slot_length().hours());
  if (slots > static_cast<double>(portfolio::kMaxHorizonSlots))
    return invalid_response(snapshot, q);

  portfolio::PortfolioQuery query;
  query.job = q.job;
  query.deadline = q.deadline;
  query.epsilon = q.epsilon;
  query.levels = q.levels;
  query.mode = q.mode == BidMode::kOneTime ? portfolio::DegenerateMode::kOneTime
                                           : portfolio::DegenerateMode::kPersistent;
  const portfolio::PortfolioStrategy strategy{snapshot.model()};
  const portfolio::PortfolioDecision d = strategy.optimize(query);

  PortfolioServeMetrics& m = portfolio_metrics();
  m.levels.observe(static_cast<double>(q.levels));
  if (d.use_on_demand) m.on_demand_fallback.increment();
  if (d.degenerate) m.degenerate.increment();

  Response r = base_response(snapshot, q);
  r.level_count = static_cast<std::uint8_t>(d.level_count);
  for (int k = 0; k < d.level_count; ++k)
    r.levels[static_cast<std::size_t>(k)] =
        PortfolioLevel{d.levels[static_cast<std::size_t>(k)].bid,
                       d.levels[static_cast<std::size_t>(k)].share};
  r.on_demand_share = d.on_demand_share;
  r.violation = d.violation;
  r.expected_cost = d.expected_cost;
  r.expected_hours = q.deadline;
  r.bid = d.level_count > 0 ? d.levels[0].bid : d.backstop;
  r.acceptance = d.level_count > 0 ? snapshot.model().acceptance(d.levels[0].bid) : 1.0;
  r.feasible = d.feasible;
  r.use_on_demand = d.use_on_demand;
  r.price = d.backstop;
  r.status = Status::kOk;
  return r;
}

/// Scalar dispatch without metrics (the public entry points tally).
Response run_scalar(const ModelSnapshot& snapshot, const Request& q) {
  try {
    switch (q.kind) {
      case Kind::kRunLength:
        if (!run_length_valid(q)) return invalid_response(snapshot, q);
        return answer_run_length(snapshot, q, snapshot.model().acceptance(q.bid));
      case Kind::kExpectedCost:
        if (!expected_cost_valid(q)) return invalid_response(snapshot, q);
        return answer_expected_cost(snapshot, q, snapshot.model().acceptance(q.bid),
                                    snapshot.model().partial_expectation(q.bid));
      case Kind::kPersistentFeasibility:
        if (!feasibility_valid(q)) return invalid_response(snapshot, q);
        return answer_feasibility(snapshot, q, snapshot.model().acceptance(q.bid));
      case Kind::kOptimalBid:
        if (!optimal_bid_valid(q)) return invalid_response(snapshot, q);
        return answer_optimal_bid(snapshot, q);
      case Kind::kProviderPrice:
        if (!provider_price_valid(q)) return invalid_response(snapshot, q);
        return answer_provider_price(snapshot, q);
      case Kind::kPortfolioBid:
        // Optimizer kind: scalar path only (batchable() excludes it), so
        // the 1-vs-N-worker bit-identity holds by construction.
        if (!portfolio_valid(q)) return invalid_response(snapshot, q);
        return answer_portfolio(snapshot, q);
    }
    return invalid_response(snapshot, q);  // unknown kind byte
  } catch (const std::exception&) {
    // The never-throws policy: an unexpected model error (degenerate law,
    // violated model invariant) must not kill a worker thread.
    Response r = base_response(snapshot, q);
    r.status = Status::kError;
    return r;
  }
}

Response not_found_response(const Request& q) {
  Response r;
  r.kind = q.kind;
  r.status = Status::kNotFound;
  return r;
}

/// Whether the batch path can gather this request's model queries into the
/// one-sweep batch query plane (validity checked separately).
bool batchable(Kind kind) {
  return kind == Kind::kRunLength || kind == Kind::kExpectedCost ||
         kind == Kind::kPersistentFeasibility;
}

}  // namespace

Response execute_one(const ModelSnapshot* snapshot, const Request& request) {
  request_counter(request.kind).increment();
  Response r = snapshot == nullptr ? not_found_response(request) : run_scalar(*snapshot, request);
  status_counter(r.status).increment();
  return r;
}

void execute_batch(const ModelSnapshot* snapshot, std::span<const Request* const> requests,
                   std::span<Response> responses) {
  SPOTBID_EXPECT(requests.size() == responses.size(),
                 "execute_batch: requests/responses size mismatch");
  // Per-kind / per-status tallies flushed in one Counter::add each: two
  // atomic increments per request are a measurable slice of a ~40ns scalar
  // query, and the deterministic totals are unchanged by batching them.
  std::array<std::uint64_t, kKindCount> kind_tally{};
  std::array<std::uint64_t, kStatusCount> status_tally{};
  const auto flush_tallies = [&] {
    for (std::size_t k = 0; k < kKindCount; ++k)
      if (kind_tally[k] != 0) request_counter(static_cast<Kind>(k)).add(kind_tally[k]);
    for (std::size_t s = 0; s < kStatusCount; ++s)
      if (status_tally[s] != 0)
        status_counter(static_cast<Status>(s)).add(status_tally[s]);
  };

  if (snapshot == nullptr) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ++kind_tally[static_cast<std::size_t>(requests[i]->kind)];
      responses[i] = not_found_response(*requests[i]);
      ++status_tally[static_cast<std::size_t>(responses[i].status)];
    }
    flush_tallies();
    return;
  }

  const dist::Empirical* empirical = snapshot->empirical();
  // Adaptive dispatch: below kSweepMinBatch query points the sweep's
  // O(Q log Q) sort costs more than Q O(log K) binary searches, so small
  // batches run the scalar path (bit-identical either way).
  const bool sweep = empirical != nullptr && requests.size() >= kSweepMinBatch;

  // Pass 1: route. Valid batchable requests against an empirical law gather
  // their query points; everything else (optimizer kinds, analytic laws,
  // invalid parameters, sub-threshold batches) takes the scalar path
  // immediately.
  struct Gathered {
    std::size_t index;
    double f = 0.0;
    double a = 0.0;
  };
  std::vector<Gathered> gathered;
  if (sweep) gathered.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& q = *requests[i];
    ++kind_tally[static_cast<std::size_t>(q.kind)];
    const bool gather =
        sweep && batchable(q.kind) &&
        (q.kind == Kind::kRunLength              ? run_length_valid(q)
         : q.kind == Kind::kExpectedCost         ? expected_cost_valid(q)
                                                 : feasibility_valid(q));
    if (gather) {
      gathered.push_back(Gathered{i});
    } else {
      responses[i] = run_scalar(*snapshot, q);
    }
  }

  if (!gathered.empty()) {
    // Pass 2: answer every F(bid) — and, for cost queries, A(bid) — in one
    // sorted knot sweep each (bit-identical to the scalar queries).
    std::vector<double> xs(gathered.size());
    std::vector<double> fs(gathered.size());
    for (std::size_t j = 0; j < gathered.size(); ++j)
      xs[j] = requests[gathered[j].index]->bid.usd();
    empirical->cdf_many(xs, fs);
    for (std::size_t j = 0; j < gathered.size(); ++j) gathered[j].f = fs[j];

    std::vector<double> pe_xs;
    std::vector<std::size_t> pe_pos;
    for (std::size_t j = 0; j < gathered.size(); ++j) {
      if (requests[gathered[j].index]->kind == Kind::kExpectedCost) {
        pe_xs.push_back(xs[j]);
        pe_pos.push_back(j);
      }
    }
    if (!pe_xs.empty()) {
      std::vector<double> as(pe_xs.size());
      empirical->partial_expectation_many(pe_xs, as);
      for (std::size_t j = 0; j < pe_pos.size(); ++j) gathered[pe_pos[j]].a = as[j];
    }

    // Pass 3: the same closed-form helpers the scalar path uses.
    for (const Gathered& g : gathered) {
      const Request& q = *requests[g.index];
      switch (q.kind) {
        case Kind::kRunLength:
          responses[g.index] = answer_run_length(*snapshot, q, g.f);
          break;
        case Kind::kExpectedCost:
          responses[g.index] = answer_expected_cost(*snapshot, q, g.f, g.a);
          break;
        default:
          responses[g.index] = answer_feasibility(*snapshot, q, g.f);
          break;
      }
    }
  }

  for (std::size_t i = 0; i < responses.size(); ++i)
    ++status_tally[static_cast<std::size_t>(responses[i].status)];
  flush_tallies();
}

}  // namespace spotbid::serve
