#include "spotbid/serve/model_snapshot.hpp"

#include <utility>

#include "spotbid/core/contracts.hpp"
#include "spotbid/dist/empirical.hpp"
#include "spotbid/provider/calibration.hpp"

namespace spotbid::serve {

ModelSnapshot::ModelSnapshot(std::string key, bidding::SpotPriceModel model,
                             provider::ProviderModel provider)
    : key_(std::move(key)), model_(std::move(model)), provider_(std::move(provider)) {
  SPOTBID_EXPECT(!key_.empty(), "ModelSnapshot: key must be non-empty");
  // Borrow the empirical law when there is one: the engine's batch path
  // needs the concrete type for cdf_many / partial_expectation_many. The
  // pointer shares lifetime with model_'s DistributionPtr, which this
  // snapshot owns.
  empirical_ = dynamic_cast<const dist::Empirical*>(&model_.distribution());
}

std::shared_ptr<ModelSnapshot> ModelSnapshot::from_trace(std::string key,
                                                         const trace::PriceTrace& trace,
                                                         const ec2::InstanceType& type) {
  return std::make_shared<ModelSnapshot>(
      std::move(key), bidding::SpotPriceModel::from_trace(trace, type.on_demand),
      provider::calibrated_model(type));
}

std::shared_ptr<ModelSnapshot> ModelSnapshot::from_type(std::string key,
                                                        const ec2::InstanceType& type) {
  return std::make_shared<ModelSnapshot>(std::move(key),
                                         bidding::SpotPriceModel::from_type(type),
                                         provider::calibrated_model(type));
}

}  // namespace spotbid::serve
