#include "spotbid/serve/snapshot_io.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <system_error>
#include <utility>

#include "spotbid/core/metrics.hpp"
#include "spotbid/dist/empirical.hpp"
#include "spotbid/dist/pareto.hpp"
#include "spotbid/provider/price_distribution.hpp"

namespace spotbid::serve {

namespace fs = std::filesystem;

namespace {

struct SnapshotMetrics {
  metrics::Counter& writes;
  metrics::Counter& loads;
  metrics::Counter& load_failures;
  metrics::Counter& skipped;
};

SnapshotMetrics& sm() {
  static SnapshotMetrics m{
      metrics::Registry::global().counter("serve.snapshot.writes"),
      metrics::Registry::global().counter("serve.snapshot.loads"),
      metrics::Registry::global().counter("serve.snapshot.load_failures"),
      metrics::Registry::global().counter("serve.snapshot.skipped"),
  };
  return m;
}

/// Price-law discriminator on disk.
enum class LawTag : std::uint8_t { kEmpirical = 1, kEquilibrium = 2 };

/// FNV-1a 64 over the payload. Not cryptographic — the threat model is
/// torn writes, truncation, and media bit rot, not an adversary.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

[[noreturn]] void fail(SnapshotIoCode code, const std::string& message) {
  throw SnapshotIoError{code, message};
}

/// Little-endian append-only byte sink.
struct Writer {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

/// Bounds-checked little-endian reader; every overrun is kTruncated.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (bytes.size() - pos < n)
      fail(SnapshotIoCode::kTruncated, "snapshot payload ends mid-field");
  }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes[pos + i]} << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[pos + i]} << (8 * i);
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str(std::size_t max_len) {
    const std::uint32_t len = u32();
    if (len > max_len)
      fail(SnapshotIoCode::kMalformed, "snapshot string length " + std::to_string(len) +
                                           " exceeds the format bound");
    need(len);
    std::string out{reinterpret_cast<const char*>(bytes.data() + pos), len};
    pos += len;
    return out;
  }
  [[nodiscard]] bool done() const { return pos == bytes.size(); }
};

/// Integer sample count at knot i, recovered from the stored cumulative
/// probability cum[i] = seen_i / n. seen_i <= n < 2^53, so cum[i] * n is
/// within 0.5 of the integer it encodes and llround is exact.
std::uint64_t knot_seen(double cum, std::uint64_t n) {
  return static_cast<std::uint64_t>(std::llround(cum * static_cast<double>(n)));
}

void write_empirical(Writer& w, const dist::Empirical& law) {
  const auto& x = law.knots();
  const auto& cum = law.knot_cdf();
  const auto& pe = law.knot_partial_expectation();
  const std::uint64_t n = law.sample_count();

  w.u64(n);
  w.u32(static_cast<std::uint32_t>(x.size()));
  for (double v : x) w.f64(v);
  std::uint64_t seen_prev = 0;
  for (double c : cum) {
    const std::uint64_t seen = knot_seen(c, n);
    w.u64(seen - seen_prev);  // per-knot sample count
    seen_prev = seen;
  }
  for (double c : cum) w.f64(c);
  for (double a : pe) w.f64(a);
}

dist::DistributionPtr read_empirical(Reader& r) {
  const std::uint64_t n = r.u64();
  const std::uint32_t knots = r.u32();
  // A knot is at least (8 bytes x + 8 bytes count + 16 bytes prefix), so an
  // absurd count is rejected before any allocation.
  if (knots < 2 || knots > r.bytes.size() / 32 + 2)
    fail(SnapshotIoCode::kMalformed, "empirical law: implausible knot count");
  if (n < knots)
    fail(SnapshotIoCode::kMalformed, "empirical law: fewer samples than knots");

  std::vector<double> x(knots);
  for (double& v : x) v = r.f64();
  std::vector<std::uint64_t> counts(knots);
  for (std::uint64_t& c : counts) c = r.u64();
  std::vector<double> cum(knots);
  for (double& c : cum) c = r.f64();
  std::vector<double> pe(knots);
  for (double& a : pe) a = r.f64();

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < knots; ++i) {
    if (!std::isfinite(x[i]) || (i > 0 && !(x[i - 1] < x[i])))
      fail(SnapshotIoCode::kMalformed, "empirical law: knots not finite strictly increasing");
    if (counts[i] == 0)
      fail(SnapshotIoCode::kMalformed, "empirical law: zero-count knot");
    if (counts[i] > n - total)
      fail(SnapshotIoCode::kMalformed, "empirical law: knot counts overflow the sample count");
    total += counts[i];
  }
  if (total != n)
    fail(SnapshotIoCode::kMalformed, "empirical law: knot counts do not sum to the sample count");

  // Re-expand the sorted sample multiset and rebuild through the public
  // constructor: every derived value is recomputed by the exact expressions
  // that produced the original, so the law is bit-identical by construction.
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < knots; ++i)
    samples.insert(samples.end(), static_cast<std::size_t>(counts[i]), x[i]);
  auto law = std::make_shared<dist::Empirical>(samples);

  // Integrity cross-check: the stored prefix arrays must match the rebuilt
  // ones bit for bit. A mismatch means corruption the checksum missed or a
  // writer that disagrees with this reader — either way the file is bad.
  if (law->knot_cdf() != cum || law->knot_partial_expectation() != pe)
    fail(SnapshotIoCode::kMalformed,
         "empirical law: stored prefix arrays disagree with the rebuilt law");
  return law;
}

}  // namespace

std::string_view snapshot_io_code_name(SnapshotIoCode code) {
  switch (code) {
    case SnapshotIoCode::kIoError: return "io_error";
    case SnapshotIoCode::kBadMagic: return "bad_magic";
    case SnapshotIoCode::kBadVersion: return "bad_version";
    case SnapshotIoCode::kTruncated: return "truncated";
    case SnapshotIoCode::kChecksumMismatch: return "checksum_mismatch";
    case SnapshotIoCode::kMalformed: return "malformed";
    case SnapshotIoCode::kUnsupportedLaw: return "unsupported_law";
  }
  return "unknown";
}

SnapshotIoError::SnapshotIoError(SnapshotIoCode code, const std::string& message)
    : std::runtime_error{"snapshot " + std::string{snapshot_io_code_name(code)} + ": " +
                         message},
      code_(code) {}

std::string snapshot_filename(std::string_view key) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(key.size() + kSnapshotExtension.size());
  for (const char c : key) {
    const bool plain = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                       (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (plain) {
      out.push_back(c);
    } else {
      const auto b = static_cast<std::uint8_t>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xF]);
    }
  }
  out += kSnapshotExtension;
  return out;
}

std::vector<std::uint8_t> serialize_snapshot(const ModelSnapshot& snapshot) {
  Writer payload;
  payload.str(snapshot.key());

  const provider::ProviderModel& prov = snapshot.provider();
  payload.f64(prov.pi_bar().usd());
  payload.f64(prov.pi_min().usd());
  payload.f64(prov.beta());
  payload.f64(prov.theta());

  const bidding::SpotPriceModel& model = snapshot.model();
  payload.f64(model.on_demand().usd());
  payload.f64(model.slot_length().hours());
  payload.f64(model.backstop().usd());  // v2 field

  if (const dist::Empirical* empirical = snapshot.empirical()) {
    payload.u8(static_cast<std::uint8_t>(LawTag::kEmpirical));
    write_empirical(payload, *empirical);
  } else if (const auto* equilibrium =
                 dynamic_cast<const provider::EquilibriumPriceDistribution*>(
                     &model.distribution())) {
    const auto* pareto = dynamic_cast<const dist::Pareto*>(equilibrium->arrivals().get());
    if (pareto == nullptr)
      fail(SnapshotIoCode::kUnsupportedLaw,
           "equilibrium law over non-Pareto arrivals has no serialization");
    payload.u8(static_cast<std::uint8_t>(LawTag::kEquilibrium));
    const provider::ProviderModel& law_model = equilibrium->model();
    payload.f64(law_model.pi_bar().usd());
    payload.f64(law_model.pi_min().usd());
    payload.f64(law_model.beta());
    payload.f64(law_model.theta());
    payload.f64(pareto->alpha());
    payload.f64(pareto->xm());
  } else {
    fail(SnapshotIoCode::kUnsupportedLaw,
         "price law '" + model.distribution().name() + "' has no serialization");
  }

  Writer file;
  file.u32(kSnapshotMagic);
  file.u32(kSnapshotVersion);
  file.u64(payload.bytes.size());
  file.u64(fnv1a64(payload.bytes));
  file.bytes.insert(file.bytes.end(), payload.bytes.begin(), payload.bytes.end());
  return std::move(file.bytes);
}

std::shared_ptr<ModelSnapshot> parse_snapshot(std::span<const std::uint8_t> bytes) {
  Reader header{bytes};
  if (bytes.size() < 24) fail(SnapshotIoCode::kTruncated, "file shorter than the header");
  if (header.u32() != kSnapshotMagic)
    fail(SnapshotIoCode::kBadMagic, "not a spotbid snapshot file");
  const std::uint32_t version = header.u32();
  if (version < kMinSnapshotVersion || version > kSnapshotVersion)
    fail(SnapshotIoCode::kBadVersion,
         "format version " + std::to_string(version) + ", this build speaks " +
             std::to_string(kMinSnapshotVersion) + ".." + std::to_string(kSnapshotVersion));
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  if (bytes.size() - header.pos != payload_len)
    fail(SnapshotIoCode::kTruncated,
         "payload is " + std::to_string(bytes.size() - header.pos) + " bytes, header claims " +
             std::to_string(payload_len));
  const std::span<const std::uint8_t> payload = bytes.subspan(header.pos);
  if (fnv1a64(payload) != checksum)
    fail(SnapshotIoCode::kChecksumMismatch, "payload checksum mismatch");

  Reader r{payload};
  const std::string key = r.str(4096);
  if (key.empty()) fail(SnapshotIoCode::kMalformed, "empty snapshot key");

  const double pi_bar = r.f64();
  const double pi_min = r.f64();
  const double beta = r.f64();
  const double theta = r.f64();
  const double on_demand = r.f64();
  const double slot_length = r.f64();
  // v1 files predate the portfolio backstop: fall back to the on-demand
  // price, which is exactly SpotPriceModel's cold-calibration default.
  const double backstop = version >= 2 ? r.f64() : on_demand;
  const auto tag = r.u8();

  // Model constructors enforce their own invariants via contracts; surface
  // any violation (NaN prices, unsorted knots the checks above missed, …)
  // as the typed error the caller is promised, never a raw model exception.
  try {
    dist::DistributionPtr law;
    switch (static_cast<LawTag>(tag)) {
      case LawTag::kEmpirical:
        law = read_empirical(r);
        break;
      case LawTag::kEquilibrium: {
        const double law_pi_bar = r.f64();
        const double law_pi_min = r.f64();
        const double law_beta = r.f64();
        const double law_theta = r.f64();
        const double alpha = r.f64();
        const double xm = r.f64();
        law = std::make_shared<provider::EquilibriumPriceDistribution>(
            provider::ProviderModel{Money{law_pi_bar}, Money{law_pi_min}, law_beta, law_theta},
            std::make_shared<dist::Pareto>(alpha, xm));
        break;
      }
      default:
        fail(SnapshotIoCode::kMalformed, "unknown price-law tag " + std::to_string(tag));
    }
    if (!r.done())
      fail(SnapshotIoCode::kMalformed,
           std::to_string(r.bytes.size() - r.pos) + " trailing payload byte(s)");
    bidding::SpotPriceModel model{std::move(law), Money{on_demand}, Hours{slot_length}};
    model.set_backstop(Money{backstop});
    return std::make_shared<ModelSnapshot>(
        key, std::move(model),
        provider::ProviderModel{Money{pi_bar}, Money{pi_min}, beta, theta});
  } catch (const SnapshotIoError&) {
    throw;
  } catch (const std::exception& e) {
    fail(SnapshotIoCode::kMalformed, std::string{"model rejected the payload: "} + e.what());
  }
}

std::filesystem::path write_snapshot_file(const fs::path& dir, const ModelSnapshot& snapshot) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snapshot);

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) fail(SnapshotIoCode::kIoError, "create_directories(" + dir.string() + "): " + ec.message());

  const fs::path final_path = dir / snapshot_filename(snapshot.key());
  // Dot prefix keeps the temp name outside the loader's *.spbs glob even if
  // a crash strands it; same directory keeps the rename atomic (no
  // cross-filesystem fallback to copy+delete).
  std::string temp_name = final_path.filename().string();
  temp_name.insert(temp_name.begin(), '.');
  temp_name += ".tmp";
  const fs::path temp_path = dir / temp_name;
  {
    std::ofstream os{temp_path, std::ios::binary | std::ios::trunc};
    if (!os) fail(SnapshotIoCode::kIoError, "cannot open " + temp_path.string());
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      os.close();
      fs::remove(temp_path, ec);
      fail(SnapshotIoCode::kIoError, "short write to " + temp_path.string());
    }
  }
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    fail(SnapshotIoCode::kIoError, "rename to " + final_path.string() + ": " + ec.message());
  }
  sm().writes.increment();
  return final_path;
}

std::shared_ptr<ModelSnapshot> read_snapshot_file(const fs::path& file) {
  std::ifstream is{file, std::ios::binary | std::ios::ate};
  if (!is) {
    sm().load_failures.increment();
    fail(SnapshotIoCode::kIoError, "cannot open " + file.string());
  }
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!is) {
    sm().load_failures.increment();
    fail(SnapshotIoCode::kIoError, "short read from " + file.string());
  }
  try {
    std::shared_ptr<ModelSnapshot> snapshot = parse_snapshot(bytes);
    sm().loads.increment();
    return snapshot;
  } catch (const SnapshotIoError&) {
    sm().load_failures.increment();
    throw;
  }
}

std::size_t persist_all(const SnapshotStore& store, const fs::path& dir) {
  std::size_t written = 0;
  for (const std::string& key : store.keys()) {
    const std::shared_ptr<const ModelSnapshot> snapshot = store.find(key);
    if (snapshot == nullptr) continue;  // unpublished between keys() and find()
    try {
      write_snapshot_file(dir, *snapshot);
      ++written;
    } catch (const SnapshotIoError& e) {
      if (e.code() != SnapshotIoCode::kUnsupportedLaw) throw;
      sm().skipped.increment();
    }
  }
  return written;
}

std::size_t warm_start(SnapshotStore& store, const fs::path& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;

  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator{dir, ec}) {
    if (entry.is_regular_file() && entry.path().extension() == kSnapshotExtension)
      files.push_back(entry.path());
  }
  if (ec) fail(SnapshotIoCode::kIoError, "listing " + dir.string() + ": " + ec.message());
  std::sort(files.begin(), files.end());

  std::size_t published = 0;
  for (const fs::path& file : files) {
    store.publish(read_snapshot_file(file));
    ++published;
  }
  return published;
}

}  // namespace spotbid::serve
