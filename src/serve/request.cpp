#include "spotbid/serve/request.hpp"

namespace spotbid::serve {

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kOptimalBid:
      return "optimal_bid";
    case Kind::kExpectedCost:
      return "expected_cost";
    case Kind::kRunLength:
      return "run_length";
    case Kind::kPersistentFeasibility:
      return "persistent_feasibility";
    case Kind::kProviderPrice:
      return "provider_price";
    case Kind::kPortfolioBid:
      return "portfolio_bid";
  }
  return "unknown";
}

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kNotFound:
      return "not_found";
    case Status::kInvalid:
      return "invalid";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kShutdown:
      return "shutdown";
    case Status::kError:
      return "error";
  }
  return "unknown";
}

std::string make_key(std::string_view region, std::string_view instance_type) {
  std::string key;
  key.reserve(region.size() + 1 + instance_type.size());
  key.append(region);
  key.push_back('/');
  key.append(instance_type);
  return key;
}

}  // namespace spotbid::serve
