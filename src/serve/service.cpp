#include "spotbid/serve/service.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "spotbid/core/metrics.hpp"
#include "spotbid/serve/engine.hpp"

namespace spotbid::serve {

namespace {

/// Bucket bounds for micro-batch sizes (requests per worker tick).
constexpr double kBatchBounds[] = {1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5, 128.5};

/// All under serve.sched.: queue depth, batch shapes, and admission counts
/// depend on thread scheduling, so they are excluded from the registry's
/// deterministic() subset (unlike the engine's serve.requests/responses
/// tallies, which depend only on the executed request set).
struct SchedMetrics {
  metrics::Counter& accepted;
  metrics::Counter& rejected;
  metrics::Counter& overload_entries;
  metrics::Counter& ticks;
  metrics::Gauge& queue_depth;
  metrics::Histogram& batch_size;
  metrics::Histogram& exec_timer;
};

SchedMetrics& sm() {
  static SchedMetrics m{
      metrics::Registry::global().counter("serve.sched.accepted"),
      metrics::Registry::global().counter("serve.sched.rejected"),
      metrics::Registry::global().counter("serve.sched.overload_entries"),
      metrics::Registry::global().counter("serve.sched.ticks"),
      metrics::Registry::global().gauge("serve.sched.queue_depth"),
      metrics::Registry::global().histogram("serve.sched.batch_size", kBatchBounds),
      metrics::Registry::global().timer("serve.sched.exec_seconds"),
  };
  return m;
}

Response unadmitted_response(const Request& request, Status status) {
  Response r;
  r.kind = request.kind;
  r.status = status;
  return r;
}

}  // namespace

BidService::BidService(const SnapshotStore& store, ServiceConfig config)
    : store_(&store), config_(config) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.high_watermark == 0 || config_.high_watermark > config_.queue_capacity)
    config_.high_watermark = config_.queue_capacity;
  if (config_.low_watermark == 0)
    config_.low_watermark = std::max<std::size_t>(config_.queue_capacity / 2, 1);
  config_.low_watermark = std::min(config_.low_watermark, config_.high_watermark);
  if (config_.max_batch == 0) config_.max_batch = 1;

  if (config_.start_workers) {
    workers_ = config_.workers > 0 ? config_.workers : core::default_thread_count();
    pool_ = std::make_unique<core::ThreadPool>(workers_);
    for (int i = 0; i < workers_; ++i) pool_->submit([this] { worker_loop(); });
  }
}

BidService::~BidService() { stop(); }

std::future<Response> BidService::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  bool notify = false;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopping_) {
      promise.set_value(unadmitted_response(request, Status::kShutdown));
      return future;
    }
    if (overloaded_) {
      ++rejected_;
      sm().rejected.increment();
      promise.set_value(unadmitted_response(request, Status::kOverloaded));
      return future;
    }
    queue_.push_back(Item{std::move(request), std::move(promise), {}});
    ++accepted_;
    sm().accepted.increment();
    if (queue_.size() >= config_.high_watermark) {
      overloaded_ = true;
      sm().overload_entries.increment();
    }
    notify = true;
  }
  if (notify) ready_.notify_one();
  return future;
}

void BidService::submit(Request request, Completion done) {
  bool rejected_now = false;
  Status rejected_status = Status::kShutdown;
  bool notify = false;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopping_) {
      rejected_now = true;
      rejected_status = Status::kShutdown;
    } else if (overloaded_) {
      ++rejected_;
      sm().rejected.increment();
      rejected_now = true;
      rejected_status = Status::kOverloaded;
    } else {
      Item item;
      item.request = std::move(request);
      item.done = std::move(done);
      queue_.push_back(std::move(item));
      ++accepted_;
      sm().accepted.increment();
      if (queue_.size() >= config_.high_watermark) {
        overloaded_ = true;
        sm().overload_entries.increment();
      }
      notify = true;
    }
  }
  // The rejection completion runs outside the lock: it may re-enter the
  // service or touch its own synchronization (the epoll shard's inbox).
  if (rejected_now) done(unadmitted_response(request, rejected_status));
  if (notify) ready_.notify_one();
}

Response BidService::ask(Request request) { return submit(std::move(request)).get(); }

void BidService::stop() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  ready_.notify_all();
  // The pool destructor joins once every worker loop returns; loops only
  // return when stopping_ is set AND the queue is empty, so every accepted
  // request has been answered by the time the join completes. Under manual
  // dispatch (start_workers = false) there are no workers, so whatever is
  // still queued is executed inline here — accepted futures always resolve
  // with a real engine response, never a broken promise.
  pool_.reset();
  while (drain_tick()) {
  }
}

std::size_t BidService::queue_depth() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return queue_.size();
}

bool BidService::overloaded() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return overloaded_;
}

std::uint64_t BidService::accepted() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return accepted_;
}

std::uint64_t BidService::rejected() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return rejected_;
}

bool BidService::poll_once() { return drain_tick(); }

void BidService::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock{mutex_};
      ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
    }
    drain_tick();
  }
}

bool BidService::drain_tick() {
  std::vector<Item> batch;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (queue_.empty()) return false;

    const std::size_t take = std::min(config_.max_batch, queue_.size());
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (overloaded_ && queue_.size() <= config_.low_watermark) overloaded_ = false;
    sm().queue_depth.set(static_cast<double>(queue_.size()));
  }
  // More work may remain: hand it to another parked worker before executing.
  ready_.notify_one();

  sm().ticks.increment();
  sm().batch_size.observe(static_cast<double>(batch.size()));
  const metrics::ScopedTimer timer{sm().exec_timer};

  // Group the tick's requests by key (order-preserving within a key via
  // stable_sort), resolve each key against the store once, and answer each
  // group through the batch engine path in one knot sweep.
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return batch[a].request.key < batch[b].request.key;
  });

  std::vector<const Request*> group;
  std::vector<Response> responses;
  std::size_t start = 0;
  while (start < order.size()) {
    std::size_t end = start + 1;
    while (end < order.size() &&
           batch[order[end]].request.key == batch[order[start]].request.key)
      ++end;

    const std::shared_ptr<const ModelSnapshot> snapshot =
        store_->find(batch[order[start]].request.key);
    group.clear();
    for (std::size_t i = start; i < end; ++i) group.push_back(&batch[order[i]].request);
    responses.assign(group.size(), Response{});
    execute_batch(snapshot.get(), group, responses);
    for (std::size_t i = start; i < end; ++i) {
      Item& item = batch[order[i]];
      if (item.done)
        item.done(std::move(responses[i - start]));
      else
        item.promise.set_value(std::move(responses[i - start]));
    }

    start = end;
  }
  return true;
}

}  // namespace spotbid::serve
