#include "spotbid/core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"

namespace spotbid::core {

namespace {

thread_local bool t_in_parallel_region = false;

/// Scheduler telemetry. Everything here carries the "parallel." prefix,
/// which Snapshot::deterministic() drops: chunk counts and latencies vary
/// with the thread count by design (see core/metrics.hpp).
struct ParallelMetrics {
  metrics::Counter& invocations;
  metrics::Counter& serial_invocations;
  metrics::Counter& cutover_serial;
  metrics::Counter& chunks;
  metrics::Histogram& chunk_seconds;
};

ParallelMetrics& pm() {
  static ParallelMetrics m{
      metrics::Registry::global().counter("parallel.invocations"),
      metrics::Registry::global().counter("parallel.serial_invocations"),
      metrics::Registry::global().counter("parallel.cutover_serial"),
      metrics::Registry::global().counter("parallel.chunks"),
      metrics::Registry::global().timer("parallel.chunk_seconds"),
  };
  return m;
}

/// Adaptive serial-cutover policy. Recruiting pool helpers costs queue
/// locking, condition-variable wake-ups, and cache-cold starts — tens of
/// microseconds end to end before the first helper touches an index. A
/// range whose total work is below that budget loses by going parallel
/// (the regression bench_parallel once recorded speedup 0.65 on exactly
/// such a configuration). parallel_for therefore times a small inline
/// probe of the range on the calling thread, estimates the per-item cost,
/// and finishes inline unless the remaining work can pay for the dispatch.
/// The probe runs real indices — every index still executes exactly once,
/// in a schedule the determinism contract already permits — so the
/// observable result is unchanged; only the worker placement adapts.
constexpr double kMinProbeSeconds = 2e-6;         ///< probe until this much is measured
constexpr double kSerialCutoverSeconds = 120e-6;  ///< est. remaining below this: stay inline
constexpr double kTargetChunkSeconds = 40e-6;     ///< size chunks to at least this much work

/// RAII flag so nested parallel_for calls (directly or through library
/// code the body happens to call) degrade to serial inline execution.
class RegionGuard {
 public:
  RegionGuard() : previous_(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = previous_; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool previous_;
};

int env_thread_override() {
  // Read once at startup, before any worker thread exists, and nothing in
  // the process calls setenv.
  const char* raw = std::getenv("SPOTBID_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 1 || value > 4096) return 0;
  return static_cast<int>(value);
}

/// Shared bookkeeping of one parallel_for call. Workers claim chunks from
/// an atomic cursor; the first failing chunk (lowest start index) wins the
/// exception slot so the rethrown error does not depend on scheduling.
struct ForLoopState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  void run_chunks() {
    RegionGuard guard;
    for (;;) {
      const std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n || cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t end = std::min(begin + grain, n);
      pm().chunks.increment();
      try {
        metrics::ScopedTimer chunk_timer{pm().chunk_seconds};
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mutex};
        if (begin < error_chunk) {
          error_chunk = begin;
          error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

int default_thread_count() {
  if (const int env = env_thread_override(); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool in_parallel_region() { return t_in_parallel_region; }

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable wake;
  std::deque<std::function<void()>> queue;
  bool stopping = false;
};

ThreadPool::ThreadPool(int threads) : state_(std::make_unique<State>()) {
  const int count = threads > 0 ? threads : default_thread_count();
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{state_->mutex};
    state_->stopping = true;
  }
  state_->wake.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SPOTBID_EXPECT(task != nullptr, "ThreadPool::submit: null task");
  {
    std::lock_guard<std::mutex> lock{state_->mutex};
    SPOTBID_EXPECT(!state_->stopping, "ThreadPool::submit: pool is shutting down");
    state_->queue.push_back(std::move(task));
  }
  state_->wake.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{state_->mutex};
      state_->wake.wait(lock, [&] { return state_->stopping || !state_->queue.empty(); });
      if (state_->queue.empty()) return;  // stopping and drained
      task = std::move(state_->queue.front());
      state_->queue.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;  // sized from SPOTBID_THREADS / hardware_concurrency
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body, int threads) {
  SPOTBID_EXPECT(body != nullptr, "parallel_for: null body");
  SPOTBID_EXPECT(threads >= 0, "parallel_for: negative thread count");
  if (n == 0) return;
  pm().invocations.increment();

  const int requested = threads > 0 ? threads : default_thread_count();
  // Serial fast path: trivial ranges, an explicit single thread, or a call
  // from inside another parallel region (re-entering the pool from a pool
  // worker could otherwise deadlock on a full queue of blocked parents).
  if (n == 1 || requested == 1 || t_in_parallel_region) {
    pm().serial_invocations.increment();
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Inline probe: run a geometrically growing prefix of the range on the
  // calling thread until enough wall time accumulates to estimate the
  // per-item cost. A probe exception propagates directly — consistent with
  // the lowest-faulting-chunk contract, since the probe is chunk zero.
  std::size_t done = 0;
  double probe_seconds = 0.0;
  {
    RegionGuard guard;
    std::size_t batch = 1;
    while (done < n && probe_seconds < kMinProbeSeconds) {
      const std::size_t end = std::min(n, done + batch);
      const auto start = std::chrono::steady_clock::now();
      for (; done < end; ++done) body(done);
      probe_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      batch *= 8;
    }
  }

  const std::size_t remaining_items = n - done;
  const double per_item = probe_seconds / static_cast<double>(done);
  const double remaining_seconds = per_item * static_cast<double>(remaining_items);
  if (remaining_items == 0 || remaining_seconds < kSerialCutoverSeconds) {
    // Too cheap for the pool to beat the calling thread: finish inline.
    pm().serial_invocations.increment();
    pm().cutover_serial.increment();
    RegionGuard guard;
    for (std::size_t i = done; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForLoopState>();
  state->n = n;
  state->body = &body;
  state->next.store(done, std::memory_order_relaxed);

  // Size the crew so every worker has at least one chunk's worth of
  // measured work, and the grain so chunks are big enough to amortize
  // dispatch (kTargetChunkSeconds) yet small enough to balance uneven
  // item costs (a few chunks per worker) without per-index queue traffic.
  const auto chunk_budget = static_cast<std::size_t>(remaining_seconds / kTargetChunkSeconds);
  const std::size_t workers = std::min<std::size_t>(static_cast<std::size_t>(requested),
                                                    std::max<std::size_t>(2, chunk_budget));
  const std::size_t balance_grain = std::max<std::size_t>(1, remaining_items / (workers * 4));
  const std::size_t cost_grain =
      static_cast<std::size_t>(kTargetChunkSeconds / per_item) + 1;
  state->grain = std::max(balance_grain, std::min(cost_grain, remaining_items));

  // The calling thread is worker #0; helpers come from the shared pool.
  // Helpers that find the range already drained exit immediately, so a
  // busy pool only costs latency, never correctness.
  const std::size_t helpers = std::min<std::size_t>(
      workers - 1, (remaining_items + state->grain - 1) / state->grain - 1);

  auto remaining = std::make_shared<std::atomic<std::size_t>>(helpers);
  auto done_mutex = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();
  for (std::size_t h = 0; h < helpers; ++h) {
    ThreadPool::global().submit([state, remaining, done_mutex, done_cv]() mutable {
      state->run_chunks();
      // Drop the loop-state reference (and any captured exception_ptr)
      // BEFORE the completion signal, so everything this helper releases is
      // ordered ahead of the caller's wake-up and never overlaps the
      // caller's rethrow. exception_ptr refcounting lives in libstdc++.so,
      // which ThreadSanitizer cannot instrument — an unordered late release
      // here shows up as a (false-positive) race on the exception object.
      state.reset();
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock{*done_mutex};
        done_cv->notify_all();
      }
    });
  }

  state->run_chunks();

  if (helpers > 0) {
    std::unique_lock<std::mutex> lock{*done_mutex};
    done_cv->wait(lock, [&] { return remaining->load(std::memory_order_acquire) == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace spotbid::core
