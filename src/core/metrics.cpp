#include "spotbid/core/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "spotbid/core/contracts.hpp"

namespace spotbid::metrics {

namespace detail {

bool env_enabled() {
  // Read once at startup, before any worker thread exists, and nothing in
  // the process calls setenv.
  const char* raw = std::getenv("SPOTBID_METRICS");  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return true;
  const std::string_view value{raw};
  return !(value == "off" || value == "0" || value == "false" || value == "no");
}

}  // namespace detail

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kSum: return "sum";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
    case Kind::kTimer: return "timer";
  }
  return "unknown";
}

// --- Histogram ---------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  SPOTBID_EXPECT(!bounds_.empty(), "Histogram: at least one bucket bound required");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    SPOTBID_REQUIRE_FINITE(bounds_[i], "Histogram: bucket bound");
    if (i > 0)
      SPOTBID_EXPECT(bounds_[i - 1] < bounds_[i],
                     "Histogram: bucket bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bucket_count());
}

std::uint64_t Histogram::bucket(std::size_t index) const {
  SPOTBID_EXPECT(index < bucket_count(), "Histogram::bucket: index out of range");
  return buckets_[index].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bucket_count(); ++i)
    total += buckets_[i].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < bucket_count(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  sum_ticks_.store(0, std::memory_order_relaxed);
}

// --- Batches ------------------------------------------------------------

CounterBatch::CounterBatch(CounterBatch&& other) noexcept
    : target_(other.target_), pending_(other.pending_), armed_(other.armed_) {
  other.pending_ = 0;
  other.armed_ = false;
}

CounterBatch& CounterBatch::operator=(CounterBatch&& other) noexcept {
  if (this != &other) {
    flush();
    target_ = other.target_;
    pending_ = other.pending_;
    armed_ = other.armed_;
    other.pending_ = 0;
    other.armed_ = false;
  }
  return *this;
}

void CounterBatch::flush() {
  if (pending_ == 0) return;
  // Bypass the target's enabled() check: the batch already decided to
  // record when it was armed, and dropping a flush would lose counts.
  target_->value_.fetch_add(pending_, std::memory_order_relaxed);
  pending_ = 0;
}

SumBatch::SumBatch(SumBatch&& other) noexcept
    : target_(other.target_), pending_ticks_(other.pending_ticks_), armed_(other.armed_) {
  other.pending_ticks_ = 0;
  other.armed_ = false;
}

SumBatch& SumBatch::operator=(SumBatch&& other) noexcept {
  if (this != &other) {
    flush();
    target_ = other.target_;
    pending_ticks_ = other.pending_ticks_;
    armed_ = other.armed_;
    other.pending_ticks_ = 0;
    other.armed_ = false;
  }
  return *this;
}

void SumBatch::flush() {
  if (pending_ticks_ == 0) return;
  // Like CounterBatch::flush: the armed batch already committed to record.
  target_->ticks_.fetch_add(pending_ticks_, std::memory_order_relaxed);
  pending_ticks_ = 0;
}

HistogramBatch::HistogramBatch(Histogram& target)
    // counts_ stays empty until the first commit_run(): most owners are
    // short-lived (one market per Monte-Carlo replica) and the lazy vector
    // keeps the armed constructor allocation-free.
    : target_(&target), armed_(enabled()) {}

HistogramBatch::HistogramBatch(HistogramBatch&& other) noexcept
    : target_(other.target_),
      counts_(std::move(other.counts_)),
      sum_ticks_(other.sum_ticks_),
      last_value_(other.last_value_),
      run_(other.run_),
      committed_(other.committed_),
      armed_(other.armed_) {
  other.counts_.clear();
  other.sum_ticks_ = 0;
  other.last_value_ = std::numeric_limits<double>::quiet_NaN();
  other.run_ = 0;
  other.committed_ = 0;
  other.armed_ = false;
}

HistogramBatch& HistogramBatch::operator=(HistogramBatch&& other) noexcept {
  if (this != &other) {
    flush();
    target_ = other.target_;
    counts_ = std::move(other.counts_);
    sum_ticks_ = other.sum_ticks_;
    last_value_ = other.last_value_;
    run_ = other.run_;
    committed_ = other.committed_;
    armed_ = other.armed_;
    other.counts_.clear();
    other.sum_ticks_ = 0;
    other.last_value_ = std::numeric_limits<double>::quiet_NaN();
    other.run_ = 0;
    other.committed_ = 0;
    other.armed_ = false;
  }
  return *this;
}

void HistogramBatch::commit_run() {
  if (run_ == 0) return;
  if (!std::isnan(last_value_)) {
    if (counts_.empty()) counts_.resize(target_->bucket_count(), 0);
    counts_[target_->bucket_index(last_value_)] += run_;
    sum_ticks_ += to_ticks(last_value_) * static_cast<std::int64_t>(run_);
    committed_ += run_;
  }
  run_ = 0;
}

void HistogramBatch::flush() {
  commit_run();
  bool any = false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    target_->buckets_[i].fetch_add(counts_[i], std::memory_order_relaxed);
    counts_[i] = 0;
    any = true;
  }
  if (any || sum_ticks_ != 0) {
    target_->sum_ticks_.fetch_add(sum_ticks_, std::memory_order_relaxed);
    sum_ticks_ = 0;
  }
  committed_ = 0;
}

// --- Registry -----------------------------------------------------------

struct Registry::Entry {
  std::string name;
  Kind kind = Kind::kCounter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Sum> sum;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Entry& Registry::get_or_create(std::string_view name, Kind kind) {
  SPOTBID_EXPECT(!name.empty(), "Registry: metric name must not be empty");
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = index_.find(std::string{name});
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    if (entry.kind != kind)
      throw InvalidArgument{"Registry: metric '" + entry.name + "' is a " +
                            std::string{kind_name(entry.kind)} + ", requested as " +
                            std::string{kind_name(kind)}};
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string{name};
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter: entry->counter.reset(new Counter()); break;
    case Kind::kSum: entry->sum.reset(new Sum()); break;
    case Kind::kGauge: entry->gauge.reset(new Gauge()); break;
    case Kind::kHistogram:
    case Kind::kTimer: break;  // histogram attached by the caller
  }
  entries_.push_back(std::move(entry));
  index_.emplace(entries_.back()->name, entries_.size() - 1);
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name) {
  return *get_or_create(name, Kind::kCounter).counter;
}

Sum& Registry::sum(std::string_view name) { return *get_or_create(name, Kind::kSum).sum; }

Gauge& Registry::gauge(std::string_view name) {
  return *get_or_create(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> upper_bounds) {
  Entry& entry = get_or_create(name, Kind::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram.reset(
        new Histogram{std::vector<double>(upper_bounds.begin(), upper_bounds.end())});
    return *entry.histogram;
  }
  const auto existing = entry.histogram->upper_bounds();
  if (!std::equal(existing.begin(), existing.end(), upper_bounds.begin(),
                  upper_bounds.end()))
    throw InvalidArgument{"Registry: histogram '" + entry.name +
                          "' re-requested with different bucket bounds"};
  return *entry.histogram;
}

Histogram& Registry::timer(std::string_view name) {
  Entry& entry = get_or_create(name, Kind::kTimer);
  if (entry.histogram == nullptr)
    entry.histogram.reset(new Histogram{std::vector<double>(
        std::begin(kDurationBoundsSeconds), std::end(kDurationBoundsSeconds))});
  return *entry.histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return entries_.size();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock{mutex_};
  for (auto& entry : entries_) {
    if (entry->counter) entry->counter->reset();
    if (entry->sum) entry->sum->reset();
    if (entry->gauge) entry->gauge->reset();
    if (entry->histogram) entry->histogram->reset();
  }
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    snap.metrics.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSnapshot m;
      m.name = entry->name;
      m.kind = entry->kind;
      switch (entry->kind) {
        case Kind::kCounter: m.count = entry->counter->value(); break;
        case Kind::kSum: m.value = entry->sum->value(); break;
        case Kind::kGauge: m.value = entry->gauge->value(); break;
        case Kind::kHistogram:
        case Kind::kTimer: {
          const Histogram& h = *entry->histogram;
          m.upper_bounds.assign(h.upper_bounds().begin(), h.upper_bounds().end());
          m.buckets.resize(h.bucket_count());
          for (std::size_t i = 0; i < h.bucket_count(); ++i) m.buckets[i] = h.bucket(i);
          m.count = h.count();
          m.value = h.sum();
          break;
        }
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

// --- Snapshot -----------------------------------------------------------

const MetricSnapshot* Snapshot::find(std::string_view name) const {
  for (const auto& metric : metrics)
    if (metric.name == name) return &metric;
  return nullptr;
}

Snapshot Snapshot::deterministic() const {
  Snapshot out;
  for (const auto& metric : metrics) {
    if (metric.kind == Kind::kTimer || metric.kind == Kind::kGauge) continue;
    if (metric.name.starts_with("parallel.")) continue;
    // Scheduler-telemetry carve-out: any ".sched." segment (e.g. the serve
    // layer's queue depths, batch shapes, and admission counts) varies with
    // worker count and timing by nature.
    if (metric.name.find(".sched.") != std::string::npos) continue;
    out.metrics.push_back(metric);
  }
  return out;
}

// --- Exporters ----------------------------------------------------------

namespace {

/// Escape a metric name for JSON (names are plain identifiers, but never
/// emit a malformed document on principle).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters have no business in metric names; strip them.
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string format_number(double value) {
  std::ostringstream os;
  os << std::setprecision(17) << value;
  return os.str();
}

}  // namespace

void write_json(std::ostream& os, const Snapshot& snapshot, int indent) {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  os << "{";
  bool first = true;
  for (const auto& metric : snapshot.metrics) {
    if (!first) os << ",";
    first = false;
    os << "\n" << pad << "  \"" << json_escape(metric.name) << "\": {\"kind\": \""
       << kind_name(metric.kind) << "\"";
    switch (metric.kind) {
      case Kind::kCounter: os << ", \"count\": " << metric.count; break;
      case Kind::kSum:
      case Kind::kGauge: os << ", \"value\": " << format_number(metric.value); break;
      case Kind::kHistogram:
      case Kind::kTimer: {
        os << ", \"count\": " << metric.count
           << ", \"sum\": " << format_number(metric.value) << ", \"buckets\": [";
        for (std::size_t i = 0; i < metric.buckets.size(); ++i) {
          if (i > 0) os << ", ";
          os << "{\"lt\": ";
          if (i < metric.upper_bounds.size())
            os << format_number(metric.upper_bounds[i]);
          else
            os << "null";
          os << ", \"count\": " << metric.buckets[i] << "}";
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  if (!first) os << "\n" << pad;
  os << "}";
}

void write_csv(std::ostream& os, const Snapshot& snapshot) {
  os << "metric,kind,field,value\n";
  for (const auto& metric : snapshot.metrics) {
    const auto row = [&](std::string_view field, const std::string& value) {
      os << metric.name << ',' << kind_name(metric.kind) << ',' << field << ',' << value
         << '\n';
    };
    switch (metric.kind) {
      case Kind::kCounter: row("count", std::to_string(metric.count)); break;
      case Kind::kSum:
      case Kind::kGauge: row("value", format_number(metric.value)); break;
      case Kind::kHistogram:
      case Kind::kTimer: {
        row("count", std::to_string(metric.count));
        row("sum", format_number(metric.value));
        for (std::size_t i = 0; i < metric.buckets.size(); ++i) {
          const std::string field =
              i < metric.upper_bounds.size() ? "lt_" + format_number(metric.upper_bounds[i])
                                             : std::string{"lt_inf"};
          row(field, std::to_string(metric.buckets[i]));
        }
        break;
      }
    }
  }
}

void write_summary(std::ostream& os, const Snapshot& snapshot) {
  std::vector<std::array<std::string, 4>> rows;
  rows.push_back({"metric", "kind", "count", "value"});
  for (const auto& metric : snapshot.metrics) {
    std::array<std::string, 4> row;
    row[0] = metric.name;
    row[1] = std::string{kind_name(metric.kind)};
    switch (metric.kind) {
      case Kind::kCounter:
        row[2] = std::to_string(metric.count);
        row[3] = "-";
        break;
      case Kind::kSum:
      case Kind::kGauge: {
        row[2] = "-";
        std::ostringstream value;
        value << std::setprecision(6) << metric.value;
        row[3] = value.str();
        break;
      }
      case Kind::kHistogram:
      case Kind::kTimer: {
        row[2] = std::to_string(metric.count);
        std::ostringstream value;
        value << "mean " << std::setprecision(4) << metric.mean() << "  [";
        bool first = true;
        for (std::size_t i = 0; i < metric.buckets.size(); ++i) {
          if (metric.buckets[i] == 0) continue;
          if (!first) value << ' ';
          first = false;
          if (i < metric.upper_bounds.size())
            value << '<' << std::setprecision(3) << metric.upper_bounds[i];
          else
            value << "inf";
          value << ':' << metric.buckets[i];
        }
        value << ']';
        row[3] = value.str();
        break;
      }
    }
    rows.push_back(std::move(row));
  }

  std::array<std::size_t, 4> widths{};
  for (const auto& row : rows)
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    os << "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
    if (r == 0) {
      os << "  ";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        os << std::string(widths[i], '-');
        if (i + 1 < widths.size()) os << "  ";
      }
      os << '\n';
    }
  }
}

// --- SeriesRecorder -----------------------------------------------------

void SeriesRecorder::sample(double time) {
  const Snapshot snap = registry_->snapshot();
  for (const auto& metric : snap.metrics) {
    switch (metric.kind) {
      case Kind::kCounter:
        rows_.push_back({time, metric.name, static_cast<double>(metric.count)});
        break;
      case Kind::kSum:
      case Kind::kGauge:
        rows_.push_back({time, metric.name, metric.value});
        break;
      case Kind::kHistogram:
      case Kind::kTimer: break;  // distributions have no single series value
    }
  }
  ++samples_;
}

void SeriesRecorder::write_csv(std::ostream& os) const {
  os << "time,metric,value\n";
  for (const auto& row : rows_)
    os << format_number(row.time) << ',' << row.name << ',' << format_number(row.value)
       << '\n';
}

}  // namespace spotbid::metrics
