#include "spotbid/core/version.hpp"

namespace spotbid {

const char* version_string() { return "1.0.0"; }

}  // namespace spotbid
