#include "spotbid/trace/aws_import.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <map>
#include <sstream>

#include "spotbid/core/metrics.hpp"

namespace spotbid::trace {

namespace {

struct ImportMetrics {
  metrics::Counter& records_parsed;
  metrics::Counter& parse_failures;
  metrics::Counter& slots_resampled;
  metrics::Counter& duplicates_dropped;
};

ImportMetrics& im() {
  static ImportMetrics m{
      metrics::Registry::global().counter("trace.records_parsed"),
      metrics::Registry::global().counter("trace.parse_failures"),
      metrics::Registry::global().counter("trace.slots_resampled"),
      metrics::Registry::global().counter("trace.duplicates_dropped"),
  };
  return m;
}

/// Minimal recursive-descent reader for the JSON subset the AWS CLI emits.
/// Values are returned as strings (callers convert); nested structure
/// beyond object/array/string/number/bool/null is rejected.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  /// Parse the top-level document into records.
  std::vector<SpotPriceRecord> parse_history() {
    skip_ws();
    std::vector<SpotPriceRecord> records;
    if (peek() == '{') {
      // {"SpotPriceHistory": [...], ...}
      expect('{');
      bool found = false;
      bool first = true;
      while (true) {
        skip_ws();
        if (peek() == '}') {
          get();
          break;
        }
        if (!first) fail("expected ',' between object members");
        first = false;
        while (true) {
          const std::string key = parse_string();
          skip_ws();
          expect(':');
          skip_ws();
          if (key == "SpotPriceHistory") {
            records = parse_record_array();
            found = true;
          } else {
            skip_value();
          }
          skip_ws();
          if (peek() == ',') {
            get();
            skip_ws();
            continue;
          }
          break;
        }
      }
      if (!found) fail("missing \"SpotPriceHistory\" member");
    } else if (peek() == '[') {
      records = parse_record_array();
    } else {
      fail("document must be an object or array");
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return records;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument{"aws_import: " + message + " (offset " + std::to_string(pos_) + ")"};
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c) fail(std::string{"expected '"} + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    while (true) {
      const char c = get();
      if (c == '"') break;
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: fail("unsupported escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  /// Skip any JSON value (used for members we do not care about).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{' || c == '[') {
      const char open = get();
      const char close = (open == '{') ? '}' : ']';
      int depth = 1;
      while (depth > 0) {
        const char d = get();
        if (d == '"') {
          --pos_;
          (void)parse_string();
        } else if (d == open) {
          ++depth;
        } else if (d == close) {
          --depth;
        }
      }
    } else {
      // number / true / false / null: consume the token.
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (d == ',' || d == '}' || d == ']' ||
            std::isspace(static_cast<unsigned char>(d)) != 0)
          break;
        ++pos_;
      }
    }
  }

  std::vector<SpotPriceRecord> parse_record_array() {
    skip_ws();
    expect('[');
    std::vector<SpotPriceRecord> records;
    skip_ws();
    if (peek() == ']') {
      get();
      return records;
    }
    while (true) {
      records.push_back(parse_record());
      skip_ws();
      const char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return records;
  }

  SpotPriceRecord parse_record() {
    skip_ws();
    expect('{');
    SpotPriceRecord record;
    bool has_price = false;
    bool has_time = false;
    skip_ws();
    if (peek() == '}') {
      get();
      fail("empty record");
    }
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "InstanceType") {
        record.instance_type = parse_string();
      } else if (key == "AvailabilityZone") {
        record.availability_zone = parse_string();
      } else if (key == "ProductDescription") {
        record.product_description = parse_string();
      } else if (key == "SpotPrice") {
        const std::string value = parse_string();
        try {
          record.spot_price = std::stod(value);
        } catch (const std::exception&) {
          fail("SpotPrice is not a number: " + value);
        }
        has_price = true;
      } else if (key == "Timestamp") {
        record.timestamp_epoch_s = parse_iso8601_utc(parse_string());
        has_time = true;
      } else {
        skip_value();
      }
      skip_ws();
      const char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in record");
      skip_ws();
    }
    if (!has_price || !has_time) fail("record missing SpotPrice or Timestamp");
    if (record.spot_price < 0.0) fail("negative SpotPrice");
    return record;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// True when the document needs a cleaning pass before JSON parsing:
/// CRLF line endings, or lines whose first non-blank characters open a
/// comment ('#' or "//"). Raw newlines cannot occur inside JSON strings,
/// so a line-leading comment marker is never part of legitimate data.
bool needs_cleaning(std::string_view text) {
  bool at_line_start = true;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\r') return true;
    if (at_line_start && (c == '#' || (c == '/' && i + 1 < text.size() && text[i + 1] == '/')))
      return true;
    if (c == '\n')
      at_line_start = true;
    else if (c != ' ' && c != '\t')
      at_line_start = false;
  }
  return false;
}

/// Strip '\r' and drop blank-prefixed comment lines ('#' / "//"). Blank
/// lines themselves are plain whitespace and need no special handling.
std::string strip_comment_lines(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t first = line.find_first_not_of(" \t");
    const bool comment =
        first != std::string_view::npos &&
        (line[first] == '#' || (line[first] == '/' && first + 1 < line.size() &&
                                line[first + 1] == '/'));
    if (!comment) {
      out.append(line);
      out.push_back('\n');
    }
    pos = eol + 1;
  }
  return out;
}

constexpr bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

constexpr int days_in_month(int year, int month) {
  constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

std::int64_t parse_iso8601_utc(std::string_view text) {
  // YYYY-MM-DDTHH:MM:SS[.fff](Z|+00:00)
  const auto digits = [&](std::size_t at, int count) -> int {
    if (at + count > text.size()) throw InvalidArgument{"parse_iso8601_utc: truncated"};
    int value = 0;
    for (int i = 0; i < count; ++i) {
      const char c = text[at + i];
      if (c < '0' || c > '9') throw InvalidArgument{"parse_iso8601_utc: expected digit"};
      value = value * 10 + (c - '0');
    }
    return value;
  };
  const auto expect_char = [&](std::size_t at, char c) {
    if (at >= text.size() || text[at] != c)
      throw InvalidArgument{std::string{"parse_iso8601_utc: expected '"} + c + "'"};
  };

  const int year = digits(0, 4);
  expect_char(4, '-');
  const int month = digits(5, 2);
  expect_char(7, '-');
  const int day = digits(8, 2);
  expect_char(10, 'T');
  const int hour = digits(11, 2);
  expect_char(13, ':');
  const int minute = digits(14, 2);
  expect_char(16, ':');
  const int second = digits(17, 2);

  std::size_t pos = 19;
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
  }
  if (pos >= text.size()) throw InvalidArgument{"parse_iso8601_utc: missing timezone"};
  if (text[pos] == 'Z') {
    if (pos + 1 != text.size()) throw InvalidArgument{"parse_iso8601_utc: trailing characters"};
  } else if (text.substr(pos) != "+00:00") {
    throw InvalidArgument{"parse_iso8601_utc: only UTC timestamps are supported"};
  }

  if (year < 1970 || month < 1 || month > 12 || day < 1 || day > days_in_month(year, month) ||
      hour > 23 || minute > 59 || second > 60) {
    throw InvalidArgument{"parse_iso8601_utc: field out of range"};
  }

  // Days since the epoch.
  std::int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += is_leap(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) days += days_in_month(year, m);
  days += day - 1;
  return ((days * 24 + hour) * 60 + minute) * 60 + second;
}

std::vector<SpotPriceRecord> parse_spot_price_history(std::string_view json) {
  try {
    std::vector<SpotPriceRecord> records;
    if (needs_cleaning(json)) {
      // CRLF endings or line comments (hand-annotated fixtures, files
      // round-tripped through Windows tooling): clean once, then parse.
      const std::string cleaned = strip_comment_lines(json);
      records = JsonReader{cleaned}.parse_history();
    } else {
      records = JsonReader{json}.parse_history();
    }
    im().records_parsed.add(records.size());
    return records;
  } catch (...) {
    im().parse_failures.increment();
    throw;
  }
}

std::vector<SpotPriceRecord> parse_spot_price_history(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  return parse_spot_price_history(std::string_view{text});
}

PriceTrace resample_to_trace(std::vector<SpotPriceRecord> records,
                             const ResampleOptions& options) {
  if (!(options.slot_length.hours() > 0.0))
    throw InvalidArgument{"resample_to_trace: slot length must be > 0"};

  // Filter by type/zone.
  std::erase_if(records, [&](const SpotPriceRecord& r) {
    if (!options.instance_type.empty() && r.instance_type != options.instance_type) return true;
    if (!options.availability_zone.empty() && r.availability_zone != options.availability_zone)
      return true;
    return false;
  });
  if (records.empty()) throw InvalidArgument{"resample_to_trace: no records after filtering"};

  // Homogeneity check when no explicit type filter was given. Copy, not a
  // reference: the dedup pass below rebuilds `records`.
  const std::string type = records.front().instance_type;
  for (const auto& r : records) {
    if (r.instance_type != type)
      throw InvalidArgument{
          "resample_to_trace: mixed instance types; set options.instance_type"};
  }

  // Out-of-order input is normal (the CLI emits newest-first; merged files
  // interleave zones). Stable-sort by timestamp so records sharing a
  // timestamp apply in input order — the later input record wins LOCF,
  // deterministically.
  std::stable_sort(records.begin(), records.end(),
                   [](const SpotPriceRecord& a, const SpotPriceRecord& b) {
                     return a.timestamp_epoch_s < b.timestamp_epoch_s;
                   });

  // Drop exact duplicates (every field equal): re-downloaded or
  // concatenated histories repeat records, which must not perturb the
  // resample. Each record is compared within its same-timestamp run only,
  // so non-adjacent repeats are caught too; runs are tiny in practice.
  {
    std::vector<SpotPriceRecord> unique;
    unique.reserve(records.size());
    std::size_t run_start = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (i > 0 && records[i].timestamp_epoch_s != records[i - 1].timestamp_epoch_s)
        run_start = unique.size();
      bool duplicate = false;
      for (std::size_t j = run_start; j < unique.size() && !duplicate; ++j)
        duplicate = unique[j] == records[i];
      if (duplicate)
        im().duplicates_dropped.increment();
      else
        unique.push_back(std::move(records[i]));
    }
    records = std::move(unique);
  }

  const auto slot_s = static_cast<std::int64_t>(std::llround(options.slot_length.seconds()));
  const std::int64_t start = records.front().timestamp_epoch_s / slot_s * slot_s;
  const std::int64_t end = records.back().timestamp_epoch_s;
  const auto slots = static_cast<std::size_t>((end - start) / slot_s + 1);

  // Per zone, carry the last observation forward; per slot take the
  // cheapest zone still quoting.
  std::map<std::string, double> zone_price;
  std::vector<double> prices;
  prices.reserve(slots);
  std::size_t next_record = 0;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const std::int64_t slot_end = start + static_cast<std::int64_t>(slot + 1) * slot_s;
    while (next_record < records.size() &&
           records[next_record].timestamp_epoch_s < slot_end) {
      zone_price[records[next_record].availability_zone] =
          records[next_record].spot_price;
      ++next_record;
    }
    if (zone_price.empty()) continue;  // cannot happen after the first slot
    double cheapest = zone_price.begin()->second;
    for (const auto& [zone, price] : zone_price) {
      (void)zone;
      cheapest = std::min(cheapest, price);
    }
    prices.push_back(cheapest);
  }
  if (prices.size() < 1) throw InvalidArgument{"resample_to_trace: empty resample"};
  im().slots_resampled.add(prices.size());
  return PriceTrace{type, start, options.slot_length, std::move(prices)};
}

PriceTrace import_aws_history(std::string_view json, const ResampleOptions& options) {
  return resample_to_trace(parse_spot_price_history(json), options);
}

}  // namespace spotbid::trace
