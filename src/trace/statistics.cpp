#include "spotbid/trace/statistics.hpp"

#include <algorithm>

namespace spotbid::trace {

TraceSummary summarize(const PriceTrace& trace) {
  if (trace.empty()) throw InvalidArgument{"summarize: empty trace"};
  const auto prices = trace.prices();
  TraceSummary s;
  s.min = *std::min_element(prices.begin(), prices.end());
  s.max = *std::max_element(prices.begin(), prices.end());
  s.mean = numeric::mean(prices);
  s.stddev = numeric::stddev(prices);
  s.p50 = numeric::quantile(prices, 0.50);
  s.p90 = numeric::quantile(prices, 0.90);
  s.p99 = numeric::quantile(prices, 0.99);
  return s;
}

std::vector<double> autocorrelations(const PriceTrace& trace, std::size_t max_lag) {
  if (trace.size() <= max_lag) throw InvalidArgument{"autocorrelations: trace too short"};
  std::vector<double> out;
  out.reserve(max_lag);
  for (std::size_t lag = 1; lag <= max_lag; ++lag)
    out.push_back(numeric::autocorrelation(trace.prices(), lag));
  return out;
}

dist::KsResult day_night_ks(const PriceTrace& trace) {
  const auto day = trace.prices_in_hours(8, 20);
  const auto night = trace.prices_in_hours(20, 8);
  if (day.empty() || night.empty())
    throw InvalidArgument{"day_night_ks: trace does not cover both day and night"};
  return dist::ks_two_sample(day, night);
}

numeric::Histogram price_histogram(const PriceTrace& trace, std::size_t bins) {
  if (trace.empty()) throw InvalidArgument{"price_histogram: empty trace"};
  const auto prices = trace.prices();
  const double lo = *std::min_element(prices.begin(), prices.end());
  double hi = *std::max_element(prices.begin(), prices.end());
  if (hi == lo) hi = lo + 1e-9;  // degenerate trace: widen to a sliver
  numeric::Histogram hist{lo, hi, bins};
  hist.add_all(prices);
  return hist;
}

}  // namespace spotbid::trace
