#include "spotbid/trace/generator.hpp"

#include <algorithm>

#include "spotbid/core/metrics.hpp"
#include "spotbid/provider/calibration.hpp"
#include "spotbid/provider/queue.hpp"

namespace spotbid::trace {

namespace {

metrics::Counter& slots_generated() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("trace.slots_generated");
  return c;
}

}  // namespace

PriceTrace generate_equilibrium_trace(const provider::ProviderModel& model,
                                      const dist::Distribution& arrivals,
                                      const std::string& instance_type,
                                      const GeneratorConfig& config) {
  if (config.slots <= 0) throw InvalidArgument{"generate_equilibrium_trace: slots must be > 0"};
  const double persistence = config.persistence.value_or(0.0);
  if (persistence < 0.0 || persistence >= 1.0)
    throw InvalidArgument{"generate_equilibrium_trace: persistence must be in [0, 1)"};
  numeric::Rng rng{config.seed};
  std::vector<double> prices;
  prices.reserve(static_cast<std::size_t>(config.slots));
  double current = 0.0;
  for (int i = 0; i < config.slots; ++i) {
    if (i == 0 || !rng.bernoulli(persistence)) {
      const double lambda = std::max(arrivals.sample(rng), 0.0);
      current = model.equilibrium_price(lambda).usd();
    }
    prices.push_back(current);
  }
  slots_generated().add(prices.size());
  return PriceTrace{instance_type, config.start_epoch_s, config.slot_length, std::move(prices)};
}

PriceTrace generate_queue_trace(const provider::ProviderModel& model,
                                const dist::Distribution& arrivals,
                                const std::string& instance_type,
                                const GeneratorConfig& config) {
  if (config.slots <= 0) throw InvalidArgument{"generate_queue_trace: slots must be > 0"};
  numeric::Rng rng{config.seed};
  const double mean_arrivals = arrivals.mean();
  provider::QueueSimulator queue{model, model.equilibrium_demand(mean_arrivals)};
  std::vector<double> prices;
  prices.reserve(static_cast<std::size_t>(config.slots));
  for (int i = 0; i < config.slots; ++i) {
    const auto slot = queue.step(std::max(arrivals.sample(rng), 0.0));
    prices.push_back(slot.price.usd());
  }
  slots_generated().add(prices.size());
  return PriceTrace{instance_type, config.start_epoch_s, config.slot_length, std::move(prices)};
}

PriceTrace generate_for_type(const ec2::InstanceType& type, const GeneratorConfig& config) {
  const auto model = provider::calibrated_model(type);
  const auto arrivals = provider::calibrated_arrivals(type);
  GeneratorConfig with_stickiness = config;
  if (!with_stickiness.persistence.has_value())
    with_stickiness.persistence = type.market.persistence;
  return generate_equilibrium_trace(model, *arrivals, type.name, with_stickiness);
}

}  // namespace spotbid::trace
