#include "spotbid/trace/price_trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "spotbid/core/metrics.hpp"

namespace spotbid::trace {

namespace {

metrics::Counter& csv_records_parsed() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("trace.csv_records_parsed");
  return c;
}

}  // namespace

PriceTrace::PriceTrace(std::string instance_type, std::int64_t start_epoch_s, Hours slot_length,
                       std::vector<double> prices)
    : instance_type_(std::move(instance_type)),
      start_epoch_s_(start_epoch_s),
      slot_length_(slot_length),
      prices_(std::move(prices)) {
  if (!(slot_length.hours() > 0.0)) throw InvalidArgument{"PriceTrace: slot length must be > 0"};
  for (double p : prices_)
    if (p < 0.0) throw InvalidArgument{"PriceTrace: negative price"};
}

Money PriceTrace::price_at(SlotIndex slot) const {
  if (slot < 0 || static_cast<std::size_t>(slot) >= prices_.size())
    throw InvalidArgument{"PriceTrace::price_at: slot out of range"};
  return Money{prices_[static_cast<std::size_t>(slot)]};
}

int PriceTrace::hour_of_day(SlotIndex slot) const {
  const double elapsed_s = static_cast<double>(slot) * slot_length_.seconds();
  const auto total_s = start_epoch_s_ + static_cast<std::int64_t>(elapsed_s);
  const auto seconds_of_day = ((total_s % 86400) + 86400) % 86400;
  return static_cast<int>(seconds_of_day / 3600);
}

PriceTrace PriceTrace::slice(SlotIndex from, SlotIndex to) const {
  if (from < 0 || to < from || static_cast<std::size_t>(to) > prices_.size())
    throw InvalidArgument{"PriceTrace::slice: bad range"};
  std::vector<double> sub(prices_.begin() + from, prices_.begin() + to);
  const auto offset_s =
      start_epoch_s_ + static_cast<std::int64_t>(static_cast<double>(from) * slot_length_.seconds());
  return PriceTrace{instance_type_, offset_s, slot_length_, std::move(sub)};
}

std::vector<double> PriceTrace::prices_in_hours(int hour_lo, int hour_hi) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < prices_.size(); ++i) {
    const int h = hour_of_day(static_cast<SlotIndex>(i));
    const bool inside = (hour_lo <= hour_hi) ? (h >= hour_lo && h < hour_hi)
                                             : (h >= hour_lo || h < hour_hi);
    if (inside) out.push_back(prices_[i]);
  }
  return out;
}

void PriceTrace::write_csv(std::ostream& os) const {
  os << "# " << instance_type_ << "," << start_epoch_s_ << ","
     << static_cast<std::int64_t>(slot_length_.seconds()) << "\n";
  os.precision(17);
  for (double p : prices_) os << p << "\n";
}

PriceTrace PriceTrace::read_csv(std::istream& is) {
  std::string header;
  if (!std::getline(is, header) || header.size() < 2 || header[0] != '#')
    throw InvalidArgument{"PriceTrace::read_csv: missing header"};
  std::istringstream hs{header.substr(1)};
  std::string type;
  std::string epoch_str;
  std::string slot_str;
  if (!std::getline(hs, type, ',') || !std::getline(hs, epoch_str, ',') ||
      !std::getline(hs, slot_str))
    throw InvalidArgument{"PriceTrace::read_csv: malformed header"};
  // Trim leading space from the type.
  while (!type.empty() && type.front() == ' ') type.erase(type.begin());

  std::vector<double> prices;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    prices.push_back(std::stod(line));
  }
  csv_records_parsed().add(prices.size());
  return PriceTrace{type, std::stoll(epoch_str), Hours::from_seconds(std::stod(slot_str)),
                    std::move(prices)};
}

}  // namespace spotbid::trace
