#include "spotbid/client/price_monitor.hpp"

#include <vector>

#include "spotbid/dist/empirical.hpp"

namespace spotbid::client {

PriceMonitor::PriceMonitor(Money on_demand, Hours slot_length, std::size_t capacity)
    : on_demand_(on_demand), slot_length_(slot_length), capacity_(capacity) {
  if (!(on_demand.usd() > 0.0)) throw InvalidArgument{"PriceMonitor: on-demand must be > 0"};
  if (!(slot_length.hours() > 0.0)) throw InvalidArgument{"PriceMonitor: slot length must be > 0"};
  if (capacity < 2) throw InvalidArgument{"PriceMonitor: capacity must be >= 2"};
}

void PriceMonitor::observe(Money price) {
  if (price.usd() < 0.0) throw InvalidArgument{"PriceMonitor: negative price"};
  window_.push_back(price.usd());
  while (window_.size() > capacity_) window_.pop_front();
}

void PriceMonitor::observe_trace(const trace::PriceTrace& trace) {
  for (double p : trace.prices()) observe(Money{p});
}

bidding::SpotPriceModel PriceMonitor::model() const {
  if (window_.size() < 2)
    throw ModelError{"PriceMonitor::model: need at least two observations"};
  const std::vector<double> samples(window_.begin(), window_.end());
  auto empirical = std::make_shared<dist::Empirical>(samples);
  return bidding::SpotPriceModel{std::move(empirical), on_demand_, slot_length_};
}

}  // namespace spotbid::client
