#include "spotbid/client/job_runner.hpp"

#include <cmath>

namespace spotbid::client {

namespace {

/// Copy market bookkeeping into the result.
void settle(RunResult& result, const market::RequestStatus& status, Hours slot_length) {
  result.cost += status.accrued_cost;
  result.spot_cost += status.accrued_cost;
  result.running_time += slot_length * static_cast<double>(status.running_slots);
  result.interruptions += status.interruptions;
  result.launches += status.launches;
}

}  // namespace

RunResult run_one_time(market::SpotMarket& market, Money bid, const bidding::JobSpec& job,
                       Money on_demand, const RunOptions& options) {
  const Hours tk = market.slot_length();
  const auto id = market.submit({bid, market::BidKind::kOneTime});
  // One-time requests are never interrupted-and-resumed, so no recovery
  // time applies while on spot.
  market::WorkTracker tracker{job.execution_time, Hours{0.0}, tk};

  const SlotIndex start = market.current_slot();
  RunResult result;
  for (long i = 0; i < options.max_slots; ++i) {
    market.advance();
    tracker.on_slot(market.status(id));
    if (tracker.done()) {
      market.close(id);
      result.completed = true;
      result.finished_on_spot = true;
      break;
    }
    if (market.is_final(id)) break;  // rejected or terminated
  }

  settle(result, market.status(id), tk);
  result.completion_time = tk * static_cast<double>(market.current_slot() - start);
  result.recovery_time_spent = tracker.recovery_spent();

  if (!result.completed && options.on_demand_fallback) {
    // Finish the remaining work on demand: billed at pi_bar, no
    // interruptions, plus one recovery to reload whatever was checkpointed.
    Hours remaining = job.execution_time - tracker.progress();
    if (tracker.progress().hours() > 0.0) remaining += job.recovery_time;
    result.cost += on_demand * remaining;
    result.completion_time += remaining;
    result.completed = true;
  }
  return result;
}

RunResult run_persistent(market::SpotMarket& market, Money bid, const bidding::JobSpec& job,
                         const RunOptions& options) {
  const Hours tk = market.slot_length();
  const auto id = market.submit({bid, market::BidKind::kPersistent});
  market::WorkTracker tracker{job.execution_time, job.recovery_time, tk};

  const SlotIndex start = market.current_slot();
  RunResult result;
  for (long i = 0; i < options.max_slots; ++i) {
    market.advance();
    tracker.on_slot(market.status(id));
    if (tracker.done()) {
      market.close(id);
      result.completed = true;
      result.finished_on_spot = true;
      break;
    }
  }

  settle(result, market.status(id), tk);
  result.completion_time = tk * static_cast<double>(market.current_slot() - start);
  result.recovery_time_spent = tracker.recovery_spent();
  result.interruptions = tracker.interruptions_observed();
  return result;
}

RunResult run_on_demand(const bidding::JobSpec& job, Money on_demand) {
  RunResult result;
  result.completed = true;
  result.finished_on_spot = false;
  result.completion_time = job.execution_time;
  result.running_time = job.execution_time;
  result.cost = on_demand * job.execution_time;
  return result;
}

}  // namespace spotbid::client
