#include "spotbid/client/experiment.hpp"

#include <memory>

#include "spotbid/client/monte_carlo.hpp"
#include "spotbid/provider/calibration.hpp"
#include "spotbid/trace/generator.hpp"

namespace spotbid::client {

namespace {

/// Seed stream decorrelated across instance types (the real markets of
/// different types move independently).
std::uint64_t type_seed(const ec2::InstanceType& type, std::uint64_t seed,
                        std::uint64_t stream) {
  return numeric::derive_seed(seed ^ numeric::fnv1a(type.name), stream);
}

/// Fresh market for a type: sticky prices with the calibrated marginal law.
market::SpotMarket make_market(const ec2::InstanceType& type, std::uint64_t seed) {
  auto prices = provider::calibrated_price_distribution(type);
  auto source = std::make_unique<market::ModelPriceSource>(
      std::move(prices), trace::kDefaultSlotLength, seed, type.market.persistence);
  return market::SpotMarket{std::move(source)};
}

}  // namespace

bidding::SpotPriceModel history_model(const ec2::InstanceType& type,
                                      const ExperimentConfig& config) {
  trace::GeneratorConfig generator;
  generator.slots = config.history_slots;
  generator.seed = type_seed(type, config.seed, 0x41c7);
  const auto history = trace::generate_for_type(type, generator);
  return bidding::SpotPriceModel::from_trace(history, type.on_demand);
}

AveragedOutcome run_single_instance_experiment(const ec2::InstanceType& type,
                                               const bidding::JobSpec& job,
                                               StrategyKind strategy,
                                               const ExperimentConfig& config) {
  if (config.repetitions < 1)
    throw InvalidArgument{"run_single_instance_experiment: repetitions must be >= 1"};

  const auto model = history_model(type, config);

  AveragedOutcome outcome;
  outcome.repetitions = config.repetitions;

  bidding::BidDecision decision;
  bool one_time = false;
  switch (strategy) {
    case StrategyKind::kOneTime:
      decision = bidding::one_time_bid(model, job);
      one_time = true;
      break;
    case StrategyKind::kPersistent:
      decision = bidding::persistent_bid(model, job);
      break;
    case StrategyKind::kPercentile90:
      decision = bidding::percentile_bid(model, job, 0.90);
      break;
    case StrategyKind::kOnDemand: {
      const auto run = run_on_demand(job, type.on_demand);
      outcome.avg_cost_usd = run.cost.usd();
      outcome.avg_completion_h = run.completion_time.hours();
      outcome.avg_hourly_price_usd = type.on_demand.usd();
      outcome.expected_cost_usd = run.cost.usd();
      outcome.expected_completion_h = run.completion_time.hours();
      outcome.expected_hourly_price_usd = type.on_demand.usd();
      return outcome;
    }
  }

  outcome.bid = decision.bid;
  outcome.acceptance = decision.acceptance;
  outcome.expected_cost_usd = decision.expected_cost.usd();
  outcome.expected_completion_h = decision.expected_completion.hours();
  outcome.expected_hourly_price_usd =
      decision.use_on_demand ? type.on_demand.usd() : model.expected_payment(decision.bid).usd();

  // Replicas run in parallel; the per-replica seed reproduces the historical
  // serial derivation type_seed(type, seed, 100 + rep) exactly, and the
  // accumulation below folds in replica order, so the outcome is
  // bit-identical to the old serial loop for every thread count.
  MonteCarloConfig mc;
  mc.replicas = config.repetitions;
  mc.seed = config.seed ^ numeric::fnv1a(type.name);
  mc.stream_offset = 100;
  mc.threads = config.threads;
  const auto runs = run_replicas(mc, [&](const Replica& replica) {
    auto market = make_market(type, replica.seed);
    return one_time ? run_one_time(market, decision.bid, job, type.on_demand)
                    : run_persistent(market, decision.bid, job);
  });
  for (const RunResult& run : runs) {
    outcome.avg_cost_usd += run.cost.usd();
    outcome.avg_completion_h += run.completion_time.hours();
    outcome.avg_hourly_price_usd += run.hourly_price().usd();
    outcome.avg_interruptions += run.interruptions;
    if (!run.finished_on_spot) ++outcome.spot_failures;
  }
  const double n = config.repetitions;
  outcome.avg_cost_usd /= n;
  outcome.avg_completion_h /= n;
  outcome.avg_hourly_price_usd /= n;
  outcome.avg_interruptions /= n;
  return outcome;
}

MapReduceOutcome run_mapreduce_experiment(const ec2::MapReduceSetting& setting,
                                          const bidding::ParallelJobSpec& job,
                                          const ExperimentConfig& config) {
  if (config.repetitions < 1)
    throw InvalidArgument{"run_mapreduce_experiment: repetitions must be >= 1"};

  const auto master_model = history_model(setting.master, config);
  const auto slave_model = history_model(setting.slave, config);

  MapReduceOutcome outcome;
  outcome.plan = bidding::mapreduce_bid(master_model, slave_model, job);
  outcome.repetitions = config.repetitions;

  // Parallel replicas; stream_offset 1300 makes Replica::seed the historical
  // cluster seed derive_seed(seed, 1300 + rep), and the market seeds are
  // recomputed per replica from the index, so results match the old serial
  // loop bit for bit.
  MonteCarloConfig mc;
  mc.replicas = config.repetitions;
  mc.seed = config.seed;
  mc.stream_offset = 1300;
  mc.threads = config.threads;
  const auto runs = run_replicas(mc, [&](const Replica& replica) {
    const std::uint64_t rep = static_cast<std::uint64_t>(replica.index);
    auto master_market =
        make_market(setting.master, type_seed(setting.master, config.seed, 500 + rep));
    auto slave_market =
        make_market(setting.slave, type_seed(setting.slave, config.seed, 900 + rep));

    mapreduce::ClusterConfig cluster;
    cluster.nodes = outcome.plan.nodes;
    cluster.master_bid = outcome.plan.master.bid;
    cluster.slave_bid = outcome.plan.slaves.bid;
    cluster.job = job;
    cluster.seed = replica.seed;

    return mapreduce::run_mapreduce(master_market, slave_market, cluster);
  });
  for (const auto& run : runs) {
    outcome.avg_cost_usd += run.total_cost().usd();
    outcome.avg_completion_h += run.completion_time.hours();
    outcome.avg_master_cost_usd += run.master_cost.usd();
    outcome.avg_slave_cost_usd += run.slave_cost.usd();
    outcome.avg_interruptions += run.slave_interruptions;
    outcome.avg_master_restarts += run.master_restarts;
  }
  const double n = config.repetitions;
  outcome.avg_cost_usd /= n;
  outcome.avg_completion_h /= n;
  outcome.avg_master_cost_usd /= n;
  outcome.avg_slave_cost_usd /= n;
  outcome.avg_interruptions /= n;
  outcome.avg_master_restarts /= n;
  return outcome;
}

}  // namespace spotbid::client
