#include "spotbid/client/monte_carlo.hpp"

#include "spotbid/core/metrics.hpp"

namespace spotbid::client {

namespace detail {

namespace {

struct McMetrics {
  metrics::Counter& runs;
  metrics::Counter& replicas_requested;
  metrics::Counter& replicas_completed;
  metrics::Histogram& replica_seconds;
};

McMetrics& mcm() {
  static McMetrics m{
      metrics::Registry::global().counter("mc.runs"),
      metrics::Registry::global().counter("mc.replicas_requested"),
      metrics::Registry::global().counter("mc.replicas_completed"),
      metrics::Registry::global().timer("mc.replica_seconds"),
  };
  return m;
}

}  // namespace

void note_run_started(int replicas) {
  auto& m = mcm();
  m.runs.increment();
  m.replicas_requested.add(static_cast<std::uint64_t>(replicas));
}

void note_replica_finished() { mcm().replicas_completed.increment(); }

metrics::Histogram& replica_timer() { return mcm().replica_seconds; }

}  // namespace detail

std::uint64_t replica_seed(const MonteCarloConfig& config, int index) {
  SPOTBID_EXPECT(index >= 0, "replica_seed: negative replica index");
  return numeric::derive_seed(config.seed,
                              config.stream_offset + static_cast<std::uint64_t>(index));
}

int validate_monte_carlo(const MonteCarloConfig& config) {
  SPOTBID_EXPECT(config.replicas >= 1, "MonteCarloConfig: replicas must be >= 1");
  SPOTBID_EXPECT(config.threads >= 0, "MonteCarloConfig: threads must be >= 0");
  return config.threads > 0 ? config.threads : core::default_thread_count();
}

}  // namespace spotbid::client
