#include "spotbid/client/monte_carlo.hpp"

namespace spotbid::client {

std::uint64_t replica_seed(const MonteCarloConfig& config, int index) {
  SPOTBID_EXPECT(index >= 0, "replica_seed: negative replica index");
  return numeric::derive_seed(config.seed,
                              config.stream_offset + static_cast<std::uint64_t>(index));
}

int validate_monte_carlo(const MonteCarloConfig& config) {
  SPOTBID_EXPECT(config.replicas >= 1, "MonteCarloConfig: replicas must be >= 1");
  SPOTBID_EXPECT(config.threads >= 0, "MonteCarloConfig: threads must be >= 0");
  return config.threads > 0 ? config.threads : core::default_thread_count();
}

}  // namespace spotbid::client
