#include "spotbid/workflow/dag.hpp"

#include <algorithm>
#include <optional>

#include "spotbid/market/work_tracker.hpp"

namespace spotbid::workflow {

std::vector<std::size_t> topological_order(const Workflow& workflow) {
  // An empty workflow is trivially ordered (and trivially complete in
  // run_workflow) — not an error.
  const std::size_t n = workflow.tasks.size();

  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t dep : workflow.tasks[i].depends_on) {
      if (dep >= n) throw InvalidArgument{"topological_order: dependency index out of range"};
      if (dep == i) throw InvalidArgument{"topological_order: task depends on itself"};
      ++indegree[i];
    }
  }

  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(i);

  // Kahn's algorithm; dependents found by scanning (workflows are small).
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t task = ready.back();
    ready.pop_back();
    order.push_back(task);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& deps = workflow.tasks[i].depends_on;
      if (std::find(deps.begin(), deps.end(), task) != deps.end()) {
        if (--indegree[i] == 0) ready.push_back(i);
      }
    }
  }
  if (order.size() != n) throw InvalidArgument{"topological_order: dependency cycle"};
  return order;
}

void plan_bids(const bidding::SpotPriceModel& model, Workflow& workflow) {
  for (auto& task : workflow.tasks) {
    const bidding::JobSpec job{task.execution_time, task.recovery_time};
    task.bid = bidding::persistent_bid(model, job).bid;
  }
}

WorkflowOutcome run_workflow(market::SpotMarket& market, const Workflow& workflow,
                             long max_slots) {
  (void)topological_order(workflow);  // validates the DAG

  const std::size_t n = workflow.tasks.size();
  struct Live {
    std::optional<market::RequestId> request;
    std::optional<market::WorkTracker> tracker;
  };
  std::vector<Live> live(n);

  WorkflowOutcome outcome;
  outcome.tasks.assign(n, {});

  const SlotIndex start = market.current_slot();
  const Hours tk = market.slot_length();

  const auto deps_done = [&](std::size_t i) {
    return std::all_of(workflow.tasks[i].depends_on.begin(),
                       workflow.tasks[i].depends_on.end(),
                       [&](std::size_t dep) { return outcome.tasks[dep].completed; });
  };

  // Submit initially-ready tasks ("bid only after dependencies complete").
  const auto submit_ready = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (outcome.tasks[i].completed || live[i].request.has_value()) continue;
      if (!deps_done(i)) continue;
      const auto& spec = workflow.tasks[i];
      if (!(spec.bid.usd() > 0.0))
        throw InvalidArgument{"run_workflow: task '" + spec.name +
                              "' has no bid (call plan_bids first)"};
      live[i].request = market.submit({spec.bid, market::BidKind::kPersistent});
      live[i].tracker.emplace(spec.execution_time, spec.recovery_time, tk);
      outcome.tasks[i].ready_slot = market.current_slot();
    }
  };
  submit_ready();

  long all_done_count = 0;
  for (long step = 0; step < max_slots && all_done_count < static_cast<long>(n); ++step) {
    market.advance();
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i].request.has_value() || outcome.tasks[i].completed) continue;
      const auto id = *live[i].request;
      live[i].tracker->on_slot(market.status(id));
      if (live[i].tracker->done()) {
        market.close(id);
        auto& task = outcome.tasks[i];
        task.completed = true;
        task.finish_slot = market.current_slot();
        task.cost = market.status(id).accrued_cost;
        task.interruptions = live[i].tracker->interruptions_observed();
        ++all_done_count;
      }
    }
    submit_ready();  // newly unblocked tasks bid from the next slot
  }

  for (const auto& task : outcome.tasks) outcome.total_cost += task.cost;
  outcome.completed = all_done_count == static_cast<long>(n);
  outcome.makespan = tk * static_cast<double>(market.current_slot() - start);
  return outcome;
}

}  // namespace spotbid::workflow
