#include "spotbid/market/checkpoint.hpp"

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"

namespace spotbid::market {

namespace {

struct CheckpointMetrics {
  metrics::Counter& launches;
  metrics::Counter& progress;
};

CheckpointMetrics& cpm() {
  static CheckpointMetrics m{
      metrics::Registry::global().counter("market.checkpoint_launches"),
      metrics::Registry::global().counter("market.checkpoint_progress"),
  };
  return m;
}

}  // namespace

void CheckpointStore::record_launch(const std::string& key, SlotIndex slot) {
  journals_[key].push_back({slot, CheckpointRecord::Kind::kLaunch, Hours{0.0}});
  cpm().launches.increment();
}

void CheckpointStore::record_progress(const std::string& key, SlotIndex slot,
                                      Hours completed_work) {
  SPOTBID_REQUIRE_FINITE(completed_work.hours(), "CheckpointStore: completed work");
  SPOTBID_EXPECT(completed_work.hours() >= 0.0, "CheckpointStore: negative completed work");
  journals_[key].push_back({slot, CheckpointRecord::Kind::kProgress, completed_work});
  cpm().progress.increment();
}

int CheckpointStore::launch_count(const std::string& key) const {
  const auto it = journals_.find(key);
  if (it == journals_.end()) return 0;
  int count = 0;
  for (const auto& rec : it->second)
    if (rec.kind == CheckpointRecord::Kind::kLaunch) ++count;
  return count;
}

bool CheckpointStore::is_restart(const std::string& key) const { return launch_count(key) > 1; }

std::optional<Hours> CheckpointStore::last_saved_work(const std::string& key) const {
  const auto it = journals_.find(key);
  if (it == journals_.end()) return std::nullopt;
  for (auto rec = it->second.rbegin(); rec != it->second.rend(); ++rec)
    if (rec->kind == CheckpointRecord::Kind::kProgress) return rec->completed_work;
  return std::nullopt;
}

std::vector<CheckpointRecord> CheckpointStore::journal(const std::string& key) const {
  const auto it = journals_.find(key);
  if (it == journals_.end()) return {};
  return it->second;
}

}  // namespace spotbid::market
