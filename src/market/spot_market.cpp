#include "spotbid/market/spot_market.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/market/market_metrics.hpp"

namespace spotbid::market {

bool SpotMarket::band_less(const BandEntry& a, const BandEntry& b) {
  if (a.bid_usd != b.bid_usd) return a.bid_usd < b.bid_usd;
  return a.id < b.id;
}

SpotMarket::SpotMarket(std::unique_ptr<PriceSource> source)
    : source_(std::move(source)),
      price_batch_(detail::mm().spot_price_usd),
      bids_submitted_batch_(detail::mm().bids_submitted),
      launches_batch_(detail::mm().launches),
      interruptions_batch_(detail::mm().interruptions),
      terminations_batch_(detail::mm().terminations),
      closes_batch_(detail::mm().closes),
      unresolved_batch_(detail::mm().requests_unresolved),
      running_slots_batch_(detail::mm().running_slot_total),
      pending_slots_batch_(detail::mm().pending_slot_total),
      revenue_batch_(detail::mm().revenue_usd),
      band_moves_batch_(detail::mm().band_price_moves),
      band_scanned_batch_(detail::mm().band_scanned),
      band_settlements_batch_(detail::mm().band_settlements),
      band_compactions_batch_(detail::mm().band_compactions) {
  SPOTBID_EXPECT(source_ != nullptr, "SpotMarket: null price source");
}

SpotMarket::SpotMarket(SpotMarket&&) noexcept = default;

SpotMarket& SpotMarket::operator=(SpotMarket&& other) noexcept {
  // Swap instead of overwrite, so `other`'s destructor finalizes this
  // market's previous open requests instead of silently dropping them.
  std::swap(source_, other.source_);
  std::swap(bid_usd_, other.bid_usd_);
  std::swap(kind_, other.kind_);
  std::swap(state_, other.state_);
  std::swap(launches_, other.launches_);
  std::swap(interruptions_, other.interruptions_);
  std::swap(submitted_slot_, other.submitted_slot_);
  std::swap(closed_slot_, other.closed_slot_);
  std::swap(acc_usd_, other.acc_usd_);
  std::swap(running_slots_, other.running_slots_);
  std::swap(pending_slots_, other.pending_slots_);
  std::swap(seg_start_, other.seg_start_);
  std::swap(settle_spell_, other.settle_spell_);
  std::swap(requests_, other.requests_);
  std::swap(band_, other.band_);
  std::swap(fresh_, other.fresh_);
  std::swap(staged_, other.staged_);
  std::swap(stale_, other.stale_);
  std::swap(spells_, other.spells_);
  std::swap(fold_cache_, other.fold_cache_);
  std::swap(fold_cache_upto_, other.fold_cache_upto_);
  std::swap(events_, other.events_);
  std::swap(next_slot_, other.next_slot_);
  std::swap(current_price_, other.current_price_);
  std::swap(has_price_, other.has_price_);
  std::swap(price_batch_, other.price_batch_);
  std::swap(spell_start_, other.spell_start_);
  std::swap(bids_submitted_batch_, other.bids_submitted_batch_);
  std::swap(launches_batch_, other.launches_batch_);
  std::swap(interruptions_batch_, other.interruptions_batch_);
  std::swap(terminations_batch_, other.terminations_batch_);
  std::swap(closes_batch_, other.closes_batch_);
  std::swap(unresolved_batch_, other.unresolved_batch_);
  std::swap(running_slots_batch_, other.running_slots_batch_);
  std::swap(pending_slots_batch_, other.pending_slots_batch_);
  std::swap(revenue_batch_, other.revenue_batch_);
  std::swap(band_moves_batch_, other.band_moves_batch_);
  std::swap(band_scanned_batch_, other.band_scanned_batch_);
  std::swap(band_settlements_batch_, other.band_settlements_batch_);
  std::swap(band_compactions_batch_, other.band_compactions_batch_);
  return *this;
}

SpotMarket::~SpotMarket() {
  // Close the open price spell, then derive the slot count from the batch:
  // every simulated slot belongs to exactly one spell (prices are
  // contract-checked finite; the batch drops only NaN).
  if (has_price_)
    price_batch_.observe_run(current_price_.usd(),
                             static_cast<std::uint64_t>(next_slot_ - spell_start_));
  detail::mm().slots.add(price_batch_.pending_count());
  // Requests still open when the market dies would otherwise never reach a
  // final state; settle and account for them exactly once here. Moved-from
  // markets hold empty arrays, so nothing is double-counted. The batch
  // members flush after this body, in their own destructors.
  for (RequestId id = 0; id < state_.size(); ++id) {
    if (state_[id] != RequestState::kTerminated && state_[id] != RequestState::kClosed) {
      settle(id);
      record_final_metrics(id, /*resolved=*/false);
    }
  }
}

void SpotMarket::record_final_metrics(RequestId id, bool resolved) {
  launches_batch_.add(static_cast<std::uint64_t>(launches_[id]));
  interruptions_batch_.add(static_cast<std::uint64_t>(interruptions_[id]));
  running_slots_batch_.add(static_cast<std::uint64_t>(running_slots_[id]));
  pending_slots_batch_.add(static_cast<std::uint64_t>(pending_slots_[id]));
  revenue_batch_.add(acc_usd_[id]);
  if (!resolved) unresolved_batch_.add(1);
}

Money SpotMarket::current_price() const {
  if (!has_price_) throw ModelError{"SpotMarket::current_price: no slot simulated yet"};
  return current_price_;
}

RequestId SpotMarket::submit(const BidRequest& request) {
  SPOTBID_REQUIRE_FINITE(request.bid_price.usd(), "SpotMarket::submit: bid price");
  SPOTBID_EXPECT(request.bid_price.usd() > 0.0, "SpotMarket::submit: bid must be positive");
  const RequestId id = bid_usd_.size();
  bid_usd_.push_back(request.bid_price.usd());
  kind_.push_back(request.kind);
  state_.push_back(RequestState::kSubmitted);
  launches_.push_back(0);
  interruptions_.push_back(0);
  submitted_slot_.push_back(next_slot_);
  closed_slot_.push_back(-1);
  acc_usd_.push_back(0.0);
  running_slots_.push_back(0);
  pending_slots_.push_back(0);
  seg_start_.push_back(next_slot_);
  settle_spell_.push_back(0);
  RequestStatus status;
  status.bid_price = request.bid_price;
  status.kind = request.kind;
  status.submitted_slot = next_slot_;
  requests_.push_back(status);
  staged_.push_back(id);
  bids_submitted_batch_.add(1);
  return id;
}

std::vector<SpotMarket::BandEntry>::iterator SpotMarket::run_lower_bound(
    std::vector<BandEntry>& run, double price_usd) {
  return std::lower_bound(
      run.begin(), run.end(), price_usd,
      [](const BandEntry& entry, double price) { return entry.bid_usd < price; });
}

void SpotMarket::settle_running(RequestId id, SlotIndex upto) const {
  const SlotIndex start = seg_start_[id];
  if (upto <= start) return;
  const std::uint32_t spell_in = settle_spell_[id];
  double acc = acc_usd_[id];
  // Memoized fast path: from an exact +0.0 accumulator the replay below is
  // a pure function of (start, spell_in, upto) — spells appended later all
  // begin at or after `upto`, so appends never invalidate an epoch's
  // entries. Requests launched at the same slot share one replay, turning
  // the common whole-horizon settlement of a large book from O(bids *
  // slots) dependent additions into O(slots^2) replays plus O(bids) hits.
  const bool cacheable = std::bit_cast<std::uint64_t>(acc) == 0;
  if (cacheable) {
    if (fold_cache_upto_ != upto) {
      fold_cache_.assign(static_cast<std::size_t>(upto), FoldCacheEntry{});
      fold_cache_upto_ = upto;
    }
    const FoldCacheEntry& hit = fold_cache_[static_cast<std::size_t>(start)];
    if (hit.spell_in == spell_in) {
      acc_usd_[id] = hit.acc_out;
      running_slots_[id] += upto - start;
      seg_start_[id] = upto;
      settle_spell_[id] = hit.spell_out;
      band_settlements_batch_.add(1);
      return;
    }
  }
  // Replay the oracle's per-slot fold `cost += price * t_k` spell by
  // spell: the charge was computed once per spell from the same
  // expression, and the additions happen in the same chronological order,
  // so the result is bit-identical to the per-object engine's.
  std::size_t j = spell_in;
  SlotIndex s = start;
  for (;;) {
    const SlotIndex spell_end =
        j + 1 < spells_.size() ? std::min(spells_[j + 1].start, upto) : upto;
    const double charge = spells_[j].charge_usd;
    for (; s < spell_end; ++s) acc += charge;
    if (s >= upto) break;
    ++j;
  }
  if (cacheable) {
    fold_cache_[static_cast<std::size_t>(start)] =
        FoldCacheEntry{spell_in, static_cast<std::uint32_t>(j), acc};
  }
  acc_usd_[id] = acc;
  running_slots_[id] += upto - start;
  seg_start_[id] = upto;
  settle_spell_[id] = static_cast<std::uint32_t>(j);
  band_settlements_batch_.add(1);
}

void SpotMarket::settle_pending(RequestId id, SlotIndex upto) const {
  const SlotIndex s = seg_start_[id];
  if (upto <= s) return;
  pending_slots_[id] += upto - s;
  seg_start_[id] = upto;
  band_settlements_batch_.add(1);
}

void SpotMarket::settle(RequestId id) const {
  switch (state_[id]) {
    case RequestState::kRunning:
      settle_running(id, next_slot_);
      break;
    case RequestState::kPending:
      settle_pending(id, next_slot_);
      break;
    case RequestState::kSubmitted:
    case RequestState::kTerminated:
    case RequestState::kClosed:
      break;  // nothing open: submitted not yet auctioned, finals settled at transition
  }
}

void SpotMarket::materialize(RequestId id) const {
  RequestStatus& row = requests_[id];
  row.state = state_[id];
  row.accrued_cost = Money{acc_usd_[id]};
  row.running_slots = running_slots_[id];
  row.pending_slots = pending_slots_[id];
  row.launches = launches_[id];
  row.interruptions = interruptions_[id];
  row.closed_slot = closed_slot_[id];
}

const RequestStatus& SpotMarket::status(RequestId id) const {
  SPOTBID_EXPECT(id < bid_usd_.size(), "SpotMarket: unknown request id");
  settle(id);
  materialize(id);
  return requests_[id];
}

bool SpotMarket::is_final(RequestId id) const {
  SPOTBID_EXPECT(id < bid_usd_.size(), "SpotMarket: unknown request id");
  const auto state = state_[id];
  return state == RequestState::kTerminated || state == RequestState::kClosed;
}

void SpotMarket::close(RequestId id) {
  SPOTBID_EXPECT(id < bid_usd_.size(), "SpotMarket: unknown request id");
  const RequestState state = state_[id];
  if (state == RequestState::kTerminated || state == RequestState::kClosed) {
    return;
  }
  // kSubmitted requests sit in staged_ (never entered the band); the next
  // advance() skips them there. Pending/running requests leave a stale
  // band entry behind, skipped by the sweeps and compacted eventually.
  if (state != RequestState::kSubmitted) {
    settle(id);
    ++stale_;
  }
  state_[id] = RequestState::kClosed;
  closed_slot_[id] = next_slot_;
  events_.push_back({next_slot_, id, EventKind::kClosed});
  record_final_metrics(id, /*resolved=*/true);
  closes_batch_.add(1);
}

void SpotMarket::maybe_compact() {
  const std::size_t live = band_.size() + fresh_.size();
  if (live < 64 || stale_ * 2 <= live) return;
  const auto entry_final = [this](const BandEntry& entry) {
    const RequestState state = state_[entry.id];
    return state == RequestState::kTerminated || state == RequestState::kClosed;
  };
  std::erase_if(band_, entry_final);
  std::erase_if(fresh_, entry_final);
  stale_ = 0;
  band_compactions_batch_.add(1);
}

void SpotMarket::promote_fresh() {
  if (fresh_.empty()) return;
  const auto mid = static_cast<std::ptrdiff_t>(band_.size());
  band_.insert(band_.end(), fresh_.begin(), fresh_.end());
  fresh_.clear();
  std::inplace_merge(band_.begin(), band_.begin() + mid, band_.end(), band_less);
}

SlotReport SpotMarket::advance() {
  SlotReport report;
  report.slot = next_slot_;
  report.price = source_->price_at(next_slot_);
  SPOTBID_REQUIRE_FINITE(report.price.usd(), "SpotMarket::advance: source price");
  SPOTBID_EXPECT(report.price.usd() >= 0.0, "SpotMarket::advance: negative source price");
  const Hours tk = source_->slot_length();
  const bool changed = has_price_ && report.price != current_price_;
  if (changed) {
    // Price spell ended: record it with its slot-weighted run length.
    price_batch_.observe_run(current_price_.usd(),
                             static_cast<std::uint64_t>(next_slot_ - spell_start_));
    spell_start_ = next_slot_;
  }
  if (!has_price_ || changed) {
    // Open the billing spell with the charge the oracle would apply each
    // slot; settlement replays it per running slot.
    spells_.push_back({next_slot_, (report.price * tk).usd()});
  }
  const Money old_price = current_price_;
  current_price_ = report.price;
  has_price_ = true;
  const SlotIndex slot = next_slot_;
  const double price_usd = report.price.usd();

  if (changed) {
    band_moves_batch_.add(1);
    // Each sweep visits the affected bid range of both sorted runs. The
    // per-request transitions are independent and the slot's events are
    // sorted by id below, so the run visit order is unobservable.
    if (price_usd > old_price.usd()) {
      // Upward move: running requests with bid in [old, new) are outbid.
      for (auto* run : {&band_, &fresh_}) {
        const auto lo = run_lower_bound(*run, old_price.usd());
        const auto hi = run_lower_bound(*run, price_usd);
        band_scanned_batch_.add(static_cast<std::uint64_t>(hi - lo));
        for (auto it = lo; it != hi; ++it) {
          const RequestId id = it->id;
          if (state_[id] != RequestState::kRunning) continue;  // stale entry
          settle_running(id, slot);
          if (kind_[id] == BidKind::kPersistent) {
            state_[id] = RequestState::kPending;
            ++interruptions_[id];
            seg_start_[id] = slot;  // pending from the interruption slot on
            report.events.push_back({slot, id, EventKind::kInterrupted});
          } else {
            state_[id] = RequestState::kTerminated;
            closed_slot_[id] = slot;
            report.events.push_back({slot, id, EventKind::kTerminated});
            record_final_metrics(id, /*resolved=*/true);
            terminations_batch_.add(1);
            ++stale_;
          }
        }
      }
    } else {
      // Downward move: pending requests with bid in [new, old) re-admit.
      for (auto* run : {&band_, &fresh_}) {
        const auto lo = run_lower_bound(*run, price_usd);
        const auto hi = run_lower_bound(*run, old_price.usd());
        band_scanned_batch_.add(static_cast<std::uint64_t>(hi - lo));
        for (auto it = lo; it != hi; ++it) {
          const RequestId id = it->id;
          if (state_[id] != RequestState::kPending) continue;  // stale entry
          settle_pending(id, slot);
          state_[id] = RequestState::kRunning;
          ++launches_[id];
          seg_start_[id] = slot;
          settle_spell_[id] = static_cast<std::uint32_t>(spells_.size() - 1);
          report.events.push_back({slot, id, EventKind::kLaunched});
        }
      }
    }
    maybe_compact();
  }

  if (!staged_.empty()) {
    // Newly submitted requests enter the auction this slot (staged_ is in
    // id order) and join the fresh run, merged in one pass; the fresh run
    // is promoted into the main band only when it matches its size.
    const auto first_new = static_cast<std::ptrdiff_t>(fresh_.size());
    for (const RequestId id : staged_) {
      if (state_[id] != RequestState::kSubmitted) continue;  // closed pre-auction
      if (bid_usd_[id] >= price_usd) {
        state_[id] = RequestState::kRunning;
        ++launches_[id];
        seg_start_[id] = slot;
        settle_spell_[id] = static_cast<std::uint32_t>(spells_.size() - 1);
        report.events.push_back({slot, id, EventKind::kLaunched});
      } else {
        // EC2 keeps unfulfilled spot requests open: wait for the price.
        state_[id] = RequestState::kPending;
        seg_start_[id] = slot;
      }
      fresh_.push_back({bid_usd_[id], id});
    }
    staged_.clear();
    std::sort(fresh_.begin() + first_new, fresh_.end(), band_less);
    std::inplace_merge(fresh_.begin(), fresh_.begin() + first_new, fresh_.end(), band_less);
    if (fresh_.size() >= band_.size()) promote_fresh();
  }

  // The oracle walks requests in id order and emits at most one event per
  // request per slot; sorting by id reproduces its exact event sequence.
  std::sort(report.events.begin(), report.events.end(),
            [](const Event& a, const Event& b) { return a.request < b.request; });

  events_.insert(events_.end(), report.events.begin(), report.events.end());
  ++next_slot_;
  return report;
}

void SpotMarket::advance_many(int n) {
  SPOTBID_EXPECT(n >= 0, "SpotMarket::advance_many: negative slot count");
  for (int i = 0; i < n; ++i) advance();
}

}  // namespace spotbid::market
