#include "spotbid/market/spot_market.hpp"

#include "spotbid/core/contracts.hpp"

namespace spotbid::market {

SpotMarket::SpotMarket(std::unique_ptr<PriceSource> source) : source_(std::move(source)) {
  SPOTBID_EXPECT(source_ != nullptr, "SpotMarket: null price source");
}

Money SpotMarket::current_price() const {
  if (!has_price_) throw ModelError{"SpotMarket::current_price: no slot simulated yet"};
  return current_price_;
}

RequestId SpotMarket::submit(const BidRequest& request) {
  SPOTBID_REQUIRE_FINITE(request.bid_price.usd(), "SpotMarket::submit: bid price");
  SPOTBID_EXPECT(request.bid_price.usd() > 0.0, "SpotMarket::submit: bid must be positive");
  RequestStatus status;
  status.state = RequestState::kSubmitted;
  status.bid_price = request.bid_price;
  status.kind = request.kind;
  status.submitted_slot = next_slot_;
  requests_.push_back(status);
  return requests_.size() - 1;
}

RequestStatus& SpotMarket::status_mutable(RequestId id) {
  SPOTBID_EXPECT(id < requests_.size(), "SpotMarket: unknown request id");
  return requests_[id];
}

const RequestStatus& SpotMarket::status(RequestId id) const {
  SPOTBID_EXPECT(id < requests_.size(), "SpotMarket: unknown request id");
  return requests_[id];
}

bool SpotMarket::is_final(RequestId id) const {
  const auto state = status(id).state;
  return state == RequestState::kTerminated || state == RequestState::kClosed;
}

void SpotMarket::close(RequestId id) {
  auto& req = status_mutable(id);
  if (req.state == RequestState::kTerminated || req.state == RequestState::kClosed) {
    return;
  }
  req.state = RequestState::kClosed;
  req.closed_slot = next_slot_;
  events_.push_back({next_slot_, id, EventKind::kClosed});
}

SlotReport SpotMarket::advance() {
  SlotReport report;
  report.slot = next_slot_;
  report.price = source_->price_at(next_slot_);
  SPOTBID_REQUIRE_FINITE(report.price.usd(), "SpotMarket::advance: source price");
  SPOTBID_EXPECT(report.price.usd() >= 0.0, "SpotMarket::advance: negative source price");
  current_price_ = report.price;
  has_price_ = true;

  const Hours tk = source_->slot_length();
  for (RequestId id = 0; id < requests_.size(); ++id) {
    auto& req = requests_[id];
    switch (req.state) {
      case RequestState::kTerminated:
      case RequestState::kClosed:
        break;
      case RequestState::kSubmitted: {
        if (req.bid_price >= report.price) {
          req.state = RequestState::kRunning;
          ++req.launches;
          req.accrued_cost += report.price * tk;
          ++req.running_slots;
          report.events.push_back({report.slot, id, EventKind::kLaunched});
        } else {
          // EC2 keeps unfulfilled spot requests open: wait for the price.
          req.state = RequestState::kPending;
          ++req.pending_slots;
        }
        break;
      }
      case RequestState::kPending: {
        if (req.bid_price >= report.price) {
          req.state = RequestState::kRunning;
          ++req.launches;
          req.accrued_cost += report.price * tk;
          ++req.running_slots;
          report.events.push_back({report.slot, id, EventKind::kLaunched});
        } else {
          ++req.pending_slots;
        }
        break;
      }
      case RequestState::kRunning: {
        if (req.bid_price >= report.price) {
          req.accrued_cost += report.price * tk;
          ++req.running_slots;
        } else if (req.kind == BidKind::kPersistent) {
          req.state = RequestState::kPending;
          ++req.interruptions;
          ++req.pending_slots;
          report.events.push_back({report.slot, id, EventKind::kInterrupted});
        } else {
          req.state = RequestState::kTerminated;
          req.closed_slot = report.slot;
          report.events.push_back({report.slot, id, EventKind::kTerminated});
        }
        break;
      }
    }
  }

  events_.insert(events_.end(), report.events.begin(), report.events.end());
  ++next_slot_;
  return report;
}

void SpotMarket::advance_many(int n) {
  SPOTBID_EXPECT(n >= 0, "SpotMarket::advance_many: negative slot count");
  for (int i = 0; i < n; ++i) advance();
}

}  // namespace spotbid::market
