#include "spotbid/market/work_tracker.hpp"

#include <algorithm>

#include "spotbid/core/contracts.hpp"

namespace spotbid::market {

WorkTracker::WorkTracker(Hours work_required, Hours recovery_time, Hours slot_length)
    : work_hours_(work_required.hours()),
      recovery_hours_(recovery_time.hours()),
      slot_hours_(slot_length.hours()) {
  SPOTBID_REQUIRE_FINITE(work_hours_, "WorkTracker: work");
  SPOTBID_REQUIRE_FINITE(recovery_hours_, "WorkTracker: recovery time");
  SPOTBID_EXPECT(work_hours_ > 0.0, "WorkTracker: work must be > 0");
  SPOTBID_EXPECT(recovery_hours_ >= 0.0, "WorkTracker: negative recovery time");
  SPOTBID_EXPECT(slot_hours_ > 0.0, "WorkTracker: slot length must be > 0");
}

void WorkTracker::on_slot(const RequestStatus& status) {
  ++slots_;

  // A launch beyond the first means the instance resumed after an
  // interruption: it must first re-load the checkpoint (t_r of recovery).
  if (status.launches > last_launches_) {
    if (last_launches_ > 0) {
      recovery_debt_hours_ += recovery_hours_;
      ++relaunches_;
    }
    last_launches_ = status.launches;
  }

  // Did the instance run during this slot?
  if (status.running_slots > last_running_slots_) {
    last_running_slots_ = status.running_slots;
    double available = slot_hours_;
    if (recovery_debt_hours_ > 0.0) {
      const double pay = std::min(recovery_debt_hours_, available);
      recovery_debt_hours_ -= pay;
      recovery_spent_hours_ += pay;
      available -= pay;
    }
    progress_hours_ += available;
  }
}

}  // namespace spotbid::market
