#include "spotbid/market/price_source.hpp"

#include <algorithm>

namespace spotbid::market {

TracePriceSource::TracePriceSource(trace::PriceTrace trace, bool wrap)
    : trace_(std::move(trace)), wrap_(wrap) {
  if (trace_.empty()) throw InvalidArgument{"TracePriceSource: empty trace"};
}

Money TracePriceSource::price_at(SlotIndex slot) {
  if (slot < 0) throw InvalidArgument{"TracePriceSource: negative slot"};
  const auto n = static_cast<SlotIndex>(trace_.size());
  if (slot >= n) {
    if (!wrap_) throw InvalidArgument{"TracePriceSource: slot past end of trace"};
    slot %= n;
  }
  return trace_.price_at(slot);
}

Hours TracePriceSource::slot_length() const { return trace_.slot_length(); }

ModelPriceSource::ModelPriceSource(dist::DistributionPtr price_distribution, Hours slot_length,
                                   std::uint64_t seed, double persistence)
    : distribution_(std::move(price_distribution)),
      slot_length_(slot_length),
      rng_(seed),
      persistence_(persistence) {
  if (!distribution_) throw InvalidArgument{"ModelPriceSource: null distribution"};
  if (!(slot_length.hours() > 0.0))
    throw InvalidArgument{"ModelPriceSource: slot length must be > 0"};
  if (persistence < 0.0 || persistence >= 1.0)
    throw InvalidArgument{"ModelPriceSource: persistence must be in [0, 1)"};
}

Money ModelPriceSource::price_at(SlotIndex slot) {
  if (slot < 0) throw InvalidArgument{"ModelPriceSource: negative slot"};
  while (cache_.size() <= static_cast<std::size_t>(slot)) {
    if (!cache_.empty() && rng_.bernoulli(persistence_)) {
      cache_.push_back(cache_.back());
    } else {
      cache_.push_back(distribution_->sample(rng_));
    }
  }
  return Money{cache_[static_cast<std::size_t>(slot)]};
}

Hours ModelPriceSource::slot_length() const { return slot_length_; }

QueuePriceSource::QueuePriceSource(provider::ProviderModel model, dist::DistributionPtr arrivals,
                                   Hours slot_length, std::uint64_t seed)
    : queue_(model, model.equilibrium_demand(arrivals ? arrivals->mean() : 1.0)),
      arrivals_(std::move(arrivals)),
      slot_length_(slot_length),
      rng_(seed) {
  if (!arrivals_) throw InvalidArgument{"QueuePriceSource: null arrivals"};
  if (!(slot_length.hours() > 0.0))
    throw InvalidArgument{"QueuePriceSource: slot length must be > 0"};
}

Money QueuePriceSource::price_at(SlotIndex slot) {
  if (slot < 0) throw InvalidArgument{"QueuePriceSource: negative slot"};
  while (cache_.size() <= static_cast<std::size_t>(slot)) {
    const auto record = queue_.step(std::max(arrivals_->sample(rng_), 0.0));
    cache_.push_back(record.price.usd());
  }
  return Money{cache_[static_cast<std::size_t>(slot)]};
}

Hours QueuePriceSource::slot_length() const { return slot_length_; }

}  // namespace spotbid::market
