#include "spotbid/market/price_source.hpp"

#include <algorithm>

#include "spotbid/core/contracts.hpp"

namespace spotbid::market {

TracePriceSource::TracePriceSource(trace::PriceTrace trace, bool wrap)
    : trace_(std::move(trace)), wrap_(wrap) {
  SPOTBID_EXPECT(!trace_.empty(), "TracePriceSource: empty trace");
}

Money TracePriceSource::price_at(SlotIndex slot) {
  SPOTBID_EXPECT(slot >= 0, "TracePriceSource: negative slot");
  const auto n = static_cast<SlotIndex>(trace_.size());
  if (slot >= n) {
    if (!wrap_) throw InvalidArgument{"TracePriceSource: slot past end of trace"};
    slot %= n;
  }
  return trace_.price_at(slot);
}

Hours TracePriceSource::slot_length() const { return trace_.slot_length(); }

ModelPriceSource::ModelPriceSource(dist::DistributionPtr price_distribution, Hours slot_length,
                                   std::uint64_t seed, double persistence)
    : distribution_(std::move(price_distribution)),
      slot_length_(slot_length),
      rng_(seed),
      persistence_(persistence) {
  SPOTBID_EXPECT(distribution_ != nullptr, "ModelPriceSource: null distribution");
  SPOTBID_EXPECT(slot_length.hours() > 0.0, "ModelPriceSource: slot length must be > 0");
  SPOTBID_EXPECT(persistence >= 0.0 && persistence < 1.0,
                 "ModelPriceSource: persistence must be in [0, 1)");
}

Money ModelPriceSource::price_at(SlotIndex slot) {
  SPOTBID_EXPECT(slot >= 0, "ModelPriceSource: negative slot");
  while (cache_.size() <= static_cast<std::size_t>(slot)) {
    if (!cache_.empty() && rng_.bernoulli(persistence_)) {
      cache_.push_back(cache_.back());
    } else {
      cache_.push_back(distribution_->sample(rng_));
    }
  }
  return Money{cache_[static_cast<std::size_t>(slot)]};
}

Hours ModelPriceSource::slot_length() const { return slot_length_; }

QueuePriceSource::QueuePriceSource(provider::ProviderModel model, dist::DistributionPtr arrivals,
                                   Hours slot_length, std::uint64_t seed)
    : queue_(model, model.equilibrium_demand(arrivals ? arrivals->mean() : 1.0)),
      arrivals_(std::move(arrivals)),
      slot_length_(slot_length),
      rng_(seed) {
  SPOTBID_EXPECT(arrivals_ != nullptr, "QueuePriceSource: null arrivals");
  SPOTBID_EXPECT(slot_length.hours() > 0.0, "QueuePriceSource: slot length must be > 0");
}

Money QueuePriceSource::price_at(SlotIndex slot) {
  SPOTBID_EXPECT(slot >= 0, "QueuePriceSource: negative slot");
  while (cache_.size() <= static_cast<std::size_t>(slot)) {
    const auto record = queue_.step(std::max(arrivals_->sample(rng_), 0.0));
    cache_.push_back(record.price.usd());
  }
  return Money{cache_[static_cast<std::size_t>(slot)]};
}

Hours QueuePriceSource::slot_length() const { return slot_length_; }

}  // namespace spotbid::market
