#include "spotbid/market/reference_market.hpp"

#include <utility>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/market/market_metrics.hpp"

namespace spotbid::market {

ReferenceMarket::ReferenceMarket(std::unique_ptr<PriceSource> source)
    : source_(std::move(source)), price_batch_(detail::mm().spot_price_usd) {
  SPOTBID_EXPECT(source_ != nullptr, "ReferenceMarket: null price source");
}

ReferenceMarket::ReferenceMarket(ReferenceMarket&&) noexcept = default;

ReferenceMarket& ReferenceMarket::operator=(ReferenceMarket&& other) noexcept {
  // Swap instead of overwrite, so `other`'s destructor finalizes this
  // market's previous open requests instead of silently dropping them.
  std::swap(source_, other.source_);
  std::swap(requests_, other.requests_);
  std::swap(events_, other.events_);
  std::swap(next_slot_, other.next_slot_);
  std::swap(current_price_, other.current_price_);
  std::swap(has_price_, other.has_price_);
  std::swap(price_batch_, other.price_batch_);
  std::swap(spell_start_, other.spell_start_);
  return *this;
}

ReferenceMarket::~ReferenceMarket() {
  // Close the open price spell, then derive the slot count from the batch:
  // every simulated slot belongs to exactly one spell (prices are
  // contract-checked finite; the batch drops only NaN).
  if (has_price_)
    price_batch_.observe_run(current_price_.usd(),
                             static_cast<std::uint64_t>(next_slot_ - spell_start_));
  detail::mm().slots.add(price_batch_.pending_count());
  // Requests still open when the market dies would otherwise never reach a
  // final state; account for them exactly once here. Moved-from markets
  // hold an empty request vector, so nothing is double-counted.
  for (const auto& req : requests_) {
    if (req.state != RequestState::kTerminated && req.state != RequestState::kClosed) {
      record_request_metrics(req, /*resolved=*/false);
    }
  }
}

void ReferenceMarket::record_request_metrics(const RequestStatus& request, bool resolved) {
  auto& m = detail::mm();
  m.launches.add(static_cast<std::uint64_t>(request.launches));
  m.interruptions.add(static_cast<std::uint64_t>(request.interruptions));
  m.running_slot_total.add(static_cast<std::uint64_t>(request.running_slots));
  m.pending_slot_total.add(static_cast<std::uint64_t>(request.pending_slots));
  m.revenue_usd.add(request.accrued_cost.usd());
  if (!resolved) m.requests_unresolved.increment();
}

Money ReferenceMarket::current_price() const {
  if (!has_price_) throw ModelError{"ReferenceMarket::current_price: no slot simulated yet"};
  return current_price_;
}

RequestId ReferenceMarket::submit(const BidRequest& request) {
  SPOTBID_REQUIRE_FINITE(request.bid_price.usd(), "ReferenceMarket::submit: bid price");
  SPOTBID_EXPECT(request.bid_price.usd() > 0.0, "ReferenceMarket::submit: bid must be positive");
  RequestStatus status;
  status.state = RequestState::kSubmitted;
  status.bid_price = request.bid_price;
  status.kind = request.kind;
  status.submitted_slot = next_slot_;
  requests_.push_back(status);
  detail::mm().bids_submitted.increment();
  return requests_.size() - 1;
}

RequestStatus& ReferenceMarket::status_mutable(RequestId id) {
  SPOTBID_EXPECT(id < requests_.size(), "ReferenceMarket: unknown request id");
  return requests_[id];
}

const RequestStatus& ReferenceMarket::status(RequestId id) const {
  SPOTBID_EXPECT(id < requests_.size(), "ReferenceMarket: unknown request id");
  return requests_[id];
}

bool ReferenceMarket::is_final(RequestId id) const {
  const auto state = status(id).state;
  return state == RequestState::kTerminated || state == RequestState::kClosed;
}

void ReferenceMarket::close(RequestId id) {
  auto& req = status_mutable(id);
  if (req.state == RequestState::kTerminated || req.state == RequestState::kClosed) {
    return;
  }
  req.state = RequestState::kClosed;
  req.closed_slot = next_slot_;
  events_.push_back({next_slot_, id, EventKind::kClosed});
  record_request_metrics(req, /*resolved=*/true);
  detail::mm().closes.increment();
}

SlotReport ReferenceMarket::advance() {
  SlotReport report;
  report.slot = next_slot_;
  report.price = source_->price_at(next_slot_);
  SPOTBID_REQUIRE_FINITE(report.price.usd(), "ReferenceMarket::advance: source price");
  SPOTBID_EXPECT(report.price.usd() >= 0.0, "ReferenceMarket::advance: negative source price");
  if (has_price_ && report.price != current_price_) {
    // Price spell ended: record it with its slot-weighted run length.
    price_batch_.observe_run(current_price_.usd(),
                             static_cast<std::uint64_t>(next_slot_ - spell_start_));
    spell_start_ = next_slot_;
  }
  current_price_ = report.price;
  has_price_ = true;

  const Hours tk = source_->slot_length();
  for (RequestId id = 0; id < requests_.size(); ++id) {
    auto& req = requests_[id];
    switch (req.state) {
      case RequestState::kTerminated:
      case RequestState::kClosed:
        break;
      case RequestState::kSubmitted: {
        if (req.bid_price >= report.price) {
          req.state = RequestState::kRunning;
          ++req.launches;
          req.accrued_cost += report.price * tk;
          ++req.running_slots;
          report.events.push_back({report.slot, id, EventKind::kLaunched});
        } else {
          // EC2 keeps unfulfilled spot requests open: wait for the price.
          req.state = RequestState::kPending;
          ++req.pending_slots;
        }
        break;
      }
      case RequestState::kPending: {
        if (req.bid_price >= report.price) {
          req.state = RequestState::kRunning;
          ++req.launches;
          req.accrued_cost += report.price * tk;
          ++req.running_slots;
          report.events.push_back({report.slot, id, EventKind::kLaunched});
        } else {
          ++req.pending_slots;
        }
        break;
      }
      case RequestState::kRunning: {
        if (req.bid_price >= report.price) {
          req.accrued_cost += report.price * tk;
          ++req.running_slots;
        } else if (req.kind == BidKind::kPersistent) {
          req.state = RequestState::kPending;
          ++req.interruptions;
          ++req.pending_slots;
          report.events.push_back({report.slot, id, EventKind::kInterrupted});
        } else {
          req.state = RequestState::kTerminated;
          req.closed_slot = report.slot;
          report.events.push_back({report.slot, id, EventKind::kTerminated});
          record_request_metrics(req, /*resolved=*/true);
          detail::mm().terminations.increment();
        }
        break;
      }
    }
  }

  events_.insert(events_.end(), report.events.begin(), report.events.end());
  ++next_slot_;
  return report;
}

void ReferenceMarket::advance_many(int n) {
  SPOTBID_EXPECT(n >= 0, "ReferenceMarket::advance_many: negative slot count");
  for (int i = 0; i < n; ++i) advance();
}

}  // namespace spotbid::market
