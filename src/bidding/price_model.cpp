#include "spotbid/bidding/price_model.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"
#include "spotbid/dist/empirical.hpp"
#include "spotbid/provider/calibration.hpp"

namespace spotbid::bidding {

SpotPriceModel::SpotPriceModel(dist::DistributionPtr prices, Money on_demand, Hours slot_length)
    : prices_(std::move(prices)),
      on_demand_(on_demand),
      slot_length_(slot_length),
      backstop_(on_demand) {
  SPOTBID_EXPECT(prices_ != nullptr, "SpotPriceModel: null price distribution");
  SPOTBID_REQUIRE_FINITE(on_demand.usd(), "SpotPriceModel: on-demand price");
  SPOTBID_EXPECT(on_demand.usd() > 0.0, "SpotPriceModel: on-demand price must be > 0");
  SPOTBID_REQUIRE_FINITE(slot_length.hours(), "SpotPriceModel: slot length");
  SPOTBID_EXPECT(slot_length.hours() > 0.0, "SpotPriceModel: slot length must be > 0");

  // Hot scalars, cached once: models are built per trace/round (cheap, low
  // frequency) while these values are read on every bid decision.
  support_lo_usd_ = prices_->support_lo();
  support_hi_usd_ = prices_->support_hi();
  acceptance_at_cap_ = prices_->cdf(on_demand_.usd());
  const double lo = prices_->quantile(kMinAcceptance);
  double hi = support_hi_usd_;
  if (!std::isfinite(hi)) hi = prices_->quantile(1.0 - 1e-9);
  hi = std::min(hi, on_demand_.usd());
  min_bid_ = Money{lo};
  max_bid_ = Money{std::max(hi, lo)};
}

SpotPriceModel SpotPriceModel::from_trace(const trace::PriceTrace& trace, Money on_demand) {
  SPOTBID_EXPECT(trace.size() >= 2, "SpotPriceModel::from_trace: trace too short");
  auto empirical = std::make_shared<dist::Empirical>(trace.prices());
  return SpotPriceModel{std::move(empirical), on_demand, trace.slot_length()};
}

SpotPriceModel SpotPriceModel::from_type(const ec2::InstanceType& type, Hours slot_length) {
  return SpotPriceModel{provider::calibrated_price_distribution(type), type.on_demand,
                        slot_length};
}

void SpotPriceModel::set_backstop(Money price) {
  SPOTBID_REQUIRE_FINITE(price.usd(), "SpotPriceModel::set_backstop: price");
  SPOTBID_EXPECT(price.usd() > 0.0, "SpotPriceModel::set_backstop: price must be > 0");
  backstop_ = price;
}

double SpotPriceModel::acceptance(Money p) const {
  SPOTBID_REQUIRE_NOT_NAN(p.usd(), "SpotPriceModel::acceptance: bid price");
  return prices_->cdf(p.usd());
}

double SpotPriceModel::density(Money p) const {
  SPOTBID_REQUIRE_NOT_NAN(p.usd(), "SpotPriceModel::density: price");
  return prices_->pdf(p.usd());
}

Money SpotPriceModel::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "SpotPriceModel::quantile: q");
  return Money{prices_->quantile(q)};
}

Money SpotPriceModel::expected_payment(Money p) const {
  const double f = acceptance(p);
  if (!(f > 0.0))
    throw ModelError{"SpotPriceModel::expected_payment: bid below all spot prices (F(p) = 0)"};
  return Money{prices_->partial_expectation(p.usd()) / f};
}

double SpotPriceModel::partial_expectation(Money p) const {
  return prices_->partial_expectation(p.usd());
}

}  // namespace spotbid::bidding
