#include "spotbid/bidding/risk.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/integrate.hpp"
#include "spotbid/numeric/optimize.hpp"
#include "spotbid/numeric/roots.hpp"

namespace spotbid::bidding {

namespace {

/// E[pi^2 1(pi <= p)] through the quantile representation
/// int_0^{F(p)} Q(u)^2 du — exact for atoms in any price law.
double partial_second_moment(const SpotPriceModel& model, Money p) {
  const double f = model.acceptance(p);
  if (f <= 0.0) return 0.0;
  return numeric::adaptive_simpson(
      [&](double u) {
        const double x = model.quantile(std::clamp(u, 0.0, 1.0)).usd();
        return x * x;
      },
      0.0, f, 1e-12);
}

/// Busy slots a persistent job needs in expectation at bid p.
double busy_slots(const SpotPriceModel& model, Money p, const JobSpec& job) {
  const Hours busy = persistent_busy_time(model, p, job);
  if (!std::isfinite(busy.hours())) return kInfiniteCost;
  return busy.hours() / model.slot_length().hours();
}

}  // namespace

double conditional_payment_variance(const SpotPriceModel& model, Money p) {
  const double f = model.acceptance(p);
  if (!(f > 0.0))
    throw ModelError{"conditional_payment_variance: bid below all spot prices"};
  const double mean = model.partial_expectation(p) / f;
  const double second = partial_second_moment(model, p) / f;
  return std::max(second - mean * mean, 0.0);
}

double persistent_cost_variance(const SpotPriceModel& model, Money p, const JobSpec& job) {
  const double n = busy_slots(model, p, job);
  if (!std::isfinite(n)) return kInfiniteCost;
  const double tk = model.slot_length().hours();
  return n * conditional_payment_variance(model, p) * tk * tk;
}

BidDecision variance_constrained_bid(const SpotPriceModel& model, const JobSpec& job,
                                     double max_variance_usd2) {
  SPOTBID_EXPECT(max_variance_usd2 >= 0.0,
                 "variance_constrained_bid: negative variance bound");

  BidDecision unconstrained = persistent_bid(model, job);
  if (!unconstrained.use_on_demand &&
      persistent_cost_variance(model, unconstrained.bid, job) <= max_variance_usd2) {
    unconstrained.rationale += " [variance bound slack]";
    return unconstrained;
  }

  // Search the feasible set directly: minimize cost with an infinite
  // penalty outside the variance bound. Bounds come precomputed from the
  // model (the same [kMinAcceptance quantile, capped support] range the
  // strategies search).
  const double lo = model.min_bid().usd();
  const double hi = model.max_bid().usd();
  const auto objective = [&](double p) {
    const double variance = persistent_cost_variance(model, Money{p}, job);
    if (!(variance <= max_variance_usd2)) return 1e30;
    const Money cost = persistent_expected_cost(model, Money{p}, job);
    return std::isfinite(cost.usd()) ? cost.usd() : 1e30;
  };
  const auto best = numeric::grid_then_golden(objective, lo, hi, 512);

  BidDecision d;
  if (best.f >= 1e29) {
    // No spot bid satisfies the bound: fall back to on-demand (variance 0).
    d.use_on_demand = true;
    d.expected_cost = model.on_demand() * job.execution_time;
    d.expected_completion = job.execution_time;
    d.rationale = "variance bound unattainable on spot; on-demand (zero variance)";
    return d;
  }
  d.bid = Money{best.x};
  d.acceptance = model.acceptance(d.bid);
  d.expected_cost = persistent_expected_cost(model, d.bid, job);
  d.expected_completion = persistent_completion_time(model, d.bid, job);
  d.expected_interruptions = persistent_expected_interruptions(model, d.bid, job);
  d.rationale = "cost-minimal bid on the variance-feasible set";
  const Money on_demand_cost = model.on_demand() * job.execution_time;
  if (d.expected_cost.usd() > on_demand_cost.usd()) {
    d.use_on_demand = true;
    d.expected_cost = on_demand_cost;
    d.expected_completion = job.execution_time;
    d.rationale += " [on-demand wins]";
  }
  return d;
}

double deadline_miss_probability(const SpotPriceModel& model, Money p, const JobSpec& job,
                                 Hours deadline) {
  SPOTBID_REQUIRE_FINITE(deadline.hours(), "deadline_miss_probability: deadline");
  SPOTBID_EXPECT(deadline.hours() > 0.0, "deadline_miss_probability: deadline must be > 0");
  const double tk = model.slot_length().hours();
  const auto d_slots = static_cast<long>(std::floor(deadline.hours() / tk + 1e-12));
  // Needed busy slots: execution plus expected recovery overhead at p.
  const Hours busy = persistent_busy_time(model, p, job);
  if (!std::isfinite(busy.hours())) return 1.0;
  const auto w_slots = static_cast<long>(std::ceil(busy.hours() / tk - 1e-12));
  if (w_slots <= 0) return 0.0;
  if (d_slots < w_slots) return 1.0;

  const double f = model.acceptance(p);
  if (f <= 0.0) return 1.0;
  if (f >= 1.0) return 0.0;

  // P(Bin(d, f) <= w - 1), summed in log space for numerical range.
  const double log_f = std::log(f);
  const double log_1mf = std::log1p(-f);
  double log_coeff = 0.0;  // log C(d, 0)
  double total = 0.0;
  for (long k = 0; k < w_slots; ++k) {
    if (k > 0) {
      log_coeff += std::log(static_cast<double>(d_slots - k + 1)) -
                   std::log(static_cast<double>(k));
    }
    total += std::exp(log_coeff + static_cast<double>(k) * log_f +
                      static_cast<double>(d_slots - k) * log_1mf);
  }
  return std::clamp(total, 0.0, 1.0);
}

std::optional<BidDecision> deadline_constrained_bid(const SpotPriceModel& model,
                                                    const JobSpec& job, Hours deadline,
                                                    double epsilon) {
  SPOTBID_REQUIRE_PROB(epsilon, "deadline_constrained_bid: epsilon");
  SPOTBID_EXPECT(epsilon > 0.0 && epsilon < 1.0,
                 "deadline_constrained_bid: epsilon must be in the open interval (0, 1)");

  const double lo = model.min_bid().usd();
  const double hi = model.max_bid().usd();

  const auto miss = [&](double p) {
    return deadline_miss_probability(model, Money{p}, job, deadline);
  };
  if (miss(hi) > epsilon) return std::nullopt;  // even the top bid is too risky

  // The eq.-15 cost is U-shaped in p while the miss probability decreases
  // in p, so: if the unconstrained optimum already meets the deadline,
  // it solves the constrained problem too; otherwise the admissible set is
  // an interval [p_min_adm, hi] strictly right of the optimum, where the
  // cost increases — the smallest admissible bid wins.
  const auto unconstrained = persistent_bid(model, job);
  double bid = hi;
  if (!unconstrained.use_on_demand && miss(unconstrained.bid.usd()) <= epsilon) {
    bid = unconstrained.bid.usd();
  } else if (miss(lo) <= epsilon) {
    bid = lo;
  } else {
    const auto residual = [&](double p) { return miss(p) - epsilon; };
    const auto bracket = numeric::find_bracket(residual, lo, hi, 512);
    if (bracket) {
      // Refine the admissible boundary, then keep the admissible side.
      auto refined = bracket->second;
      try {
        const auto root = numeric::bisect(residual, bracket->first, bracket->second,
                                          {.x_tolerance = 1e-10});
        refined = root.x;
      } catch (const InvalidArgument&) {
        // Plateau at the boundary: the bracket edge is fine.
      }
      bid = (miss(refined) <= epsilon) ? refined : bracket->second;
    }
  }

  BidDecision d;
  d.bid = Money{bid};
  d.acceptance = model.acceptance(d.bid);
  d.expected_cost = persistent_expected_cost(model, d.bid, job);
  d.expected_completion = persistent_completion_time(model, d.bid, job);
  d.expected_interruptions = persistent_expected_interruptions(model, d.bid, job);
  d.rationale = "smallest bid with P(miss deadline) <= epsilon";
  return d;
}

}  // namespace spotbid::bidding
