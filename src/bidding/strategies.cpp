#include "spotbid/bidding/strategies.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/optimize.hpp"
#include "spotbid/numeric/roots.hpp"

namespace spotbid::bidding {

namespace {

/// Bid bounds the optimizers search: [kMinAcceptance quantile, support hi
/// capped at the on-demand price]. The model caches both ends at
/// construction (they used to cost a quantile search per decision).
std::pair<double, double> bid_bounds(const SpotPriceModel& model) {
  return {model.min_bid().usd(), model.max_bid().usd()};
}

/// Fill the analytic diagnostics of a persistent-style decision.
BidDecision make_persistent_decision(const SpotPriceModel& model, const JobSpec& job, Money bid) {
  BidDecision d;
  d.bid = bid;
  d.acceptance = model.acceptance(bid);
  d.expected_cost = persistent_expected_cost(model, bid, job);
  d.expected_completion = persistent_completion_time(model, bid, job);
  d.expected_interruptions = persistent_expected_interruptions(model, bid, job);
  return d;
}

/// Switch a decision to on-demand when spot cannot beat it (the eq. 10/15
/// first constraint).
void apply_on_demand_guard(BidDecision& d, const SpotPriceModel& model, Hours execution_time) {
  const Money on_demand_cost = model.on_demand() * execution_time;
  if (!(d.expected_cost.usd() <= on_demand_cost.usd()) ||
      !std::isfinite(d.expected_cost.usd())) {
    d.use_on_demand = true;
    d.expected_cost = on_demand_cost;
    d.expected_completion = execution_time;
    d.rationale += " [on-demand wins]";
  }
}

}  // namespace

BidDecision one_time_bid(const SpotPriceModel& model, const JobSpec& job) {
  SPOTBID_REQUIRE_FINITE(job.execution_time.hours(), "one_time_bid: execution time");
  SPOTBID_EXPECT(job.execution_time.hours() > 0.0,
                 "one_time_bid: execution time must be > 0");

  // Proposition 4: bid at the (1 - t_k/t_s) percentile, floored at the
  // price-support minimum (and our acceptance floor).
  const double ratio = model.slot_length() / job.execution_time;
  const double q = std::clamp(1.0 - ratio, kMinAcceptance, 1.0);
  const auto [lo, hi] = bid_bounds(model);
  const double p = std::clamp(model.quantile(q).usd(), lo, hi);

  BidDecision d;
  d.bid = Money{p};
  d.acceptance = model.acceptance(d.bid);
  d.expected_cost = one_time_expected_cost(model, d.bid, job.execution_time);
  d.expected_completion = job.execution_time;
  d.expected_interruptions = 0.0;
  d.rationale = "Prop. 4 one-time bid at the F^{-1}(1 - t_k/t_s) percentile";
  apply_on_demand_guard(d, model, job.execution_time);
  return d;
}

std::optional<Money> psi_inverse(const SpotPriceModel& model, double target) {
  auto [lo, hi] = bid_bounds(model);
  if (!(hi > lo)) return std::nullopt;
  // psi diverges at the support minimum / floor atom; nudge off it so the
  // bracketing scan works with finite values.
  lo += 1e-9 * (hi - lo);
  const auto residual = [&](double p) { return psi(model, Money{p}) - target; };
  const auto bracket = numeric::find_bracket(residual, lo, hi, 512);
  if (!bracket) return std::nullopt;
  const auto root = numeric::brent(residual, bracket->first, bracket->second,
                                   {.x_tolerance = 1e-12});
  return Money{root.x};
}

BidDecision persistent_bid_numeric(const SpotPriceModel& model, const JobSpec& job) {
  SPOTBID_EXPECT(job.execution_time > job.recovery_time,
                 "persistent_bid: execution time must exceed recovery time (eq. 13)");
  const auto [lo, hi] = bid_bounds(model);
  const auto objective = [&](double p) {
    const Money cost = persistent_expected_cost(model, Money{p}, job);
    return std::isfinite(cost.usd()) ? cost.usd() : 1e30;
  };
  const auto best = numeric::grid_then_golden(objective, lo, hi, 512);
  BidDecision d = make_persistent_decision(model, job, Money{best.x});
  d.rationale = "numeric minimization of eq. 15";
  apply_on_demand_guard(d, model, job.execution_time);
  return d;
}

BidDecision persistent_bid(const SpotPriceModel& model, const JobSpec& job) {
  SPOTBID_EXPECT(job.execution_time > job.recovery_time,
                 "persistent_bid: execution time must exceed recovery time (eq. 13)");

  std::optional<Money> closed_form;
  if (job.recovery_time.hours() > 0.0) {
    const double target = model.slot_length() / job.recovery_time - 1.0;
    closed_form = psi_inverse(model, target);
  }

  BidDecision numeric_choice = persistent_bid_numeric(model, job);
  if (!closed_form) {
    numeric_choice.rationale = "Prop. 5 (no interior psi root); " + numeric_choice.rationale;
    return numeric_choice;
  }

  BidDecision analytic = make_persistent_decision(model, job, *closed_form);
  analytic.rationale = "Prop. 5 closed form: p = psi^{-1}(t_k/t_r - 1)";
  // Keep whichever evaluates cheaper; they agree on smooth laws, and the
  // comparison absorbs discretization error on empirical ones. The numeric
  // decision may already have been switched to on-demand by its guard, in
  // which case the analytic one will switch too if it cannot beat it.
  if (!numeric_choice.use_on_demand &&
      numeric_choice.expected_cost.usd() < analytic.expected_cost.usd()) {
    return numeric_choice;
  }
  apply_on_demand_guard(analytic, model, job.execution_time);
  return analytic;
}

BidDecision parallel_bid(const SpotPriceModel& model, const ParallelJobSpec& job) {
  SPOTBID_EXPECT(job.nodes >= 1, "parallel_bid: nodes must be >= 1");
  const Hours workload = job.execution_time + job.overhead_time;
  SPOTBID_EXPECT(workload.hours() > static_cast<double>(job.nodes) * job.recovery_time.hours(),
                 "parallel_bid: over-split job (M * t_r >= t_s + t_o violates eq. 17)");

  // eq. 19 shares eq. 15's stationarity point, so the per-node bid is the
  // Proposition-5 optimum; evaluate the parallel formulas at it.
  std::optional<Money> closed_form;
  if (job.recovery_time.hours() > 0.0) {
    const double target = model.slot_length() / job.recovery_time - 1.0;
    closed_form = psi_inverse(model, target);
  }
  const auto [lo, hi] = bid_bounds(model);
  const auto objective = [&](double p) {
    const Money cost = parallel_expected_cost(model, Money{p}, job);
    return std::isfinite(cost.usd()) ? cost.usd() : 1e30;
  };
  double bid = numeric::grid_then_golden(objective, lo, hi, 512).x;
  if (closed_form &&
      objective(closed_form->usd()) <= objective(bid) + 1e-12 * (1.0 + objective(bid))) {
    bid = closed_form->usd();
  }

  BidDecision d;
  d.bid = Money{bid};
  d.acceptance = model.acceptance(d.bid);
  d.expected_cost = parallel_expected_cost(model, d.bid, job);
  d.expected_completion = parallel_completion_time(model, d.bid, job);
  {
    // Interruption diagnostic per node, from the per-node completion time.
    const double f = d.acceptance;
    const double transitions =
        d.expected_completion.hours() / model.slot_length().hours() * f * (1.0 - f);
    d.expected_interruptions = std::max(transitions - 1.0, 0.0) * job.nodes;
  }
  d.rationale = "Section 6.1: Prop.-5 bid shared by all sub-jobs";

  const Money on_demand_cost = model.on_demand() * workload;
  if (!(d.expected_cost.usd() <= on_demand_cost.usd()) ||
      !std::isfinite(d.expected_cost.usd())) {
    d.use_on_demand = true;
    d.expected_cost = on_demand_cost;
    d.expected_completion = Hours{workload.hours() / job.nodes};
    d.rationale += " [on-demand wins]";
  }
  return d;
}

BidDecision percentile_bid(const SpotPriceModel& model, const JobSpec& job, double percentile) {
  SPOTBID_REQUIRE_PROB(percentile, "percentile_bid: percentile");
  SPOTBID_EXPECT(percentile > 0.0 && percentile < 1.0,
                 "percentile_bid: percentile must be in the open interval (0, 1)");
  BidDecision d = make_persistent_decision(model, job, model.quantile(percentile));
  d.rationale = "heuristic percentile bid";
  apply_on_demand_guard(d, model, job.execution_time);
  return d;
}

std::optional<Money> retrospective_best_bid(const trace::PriceTrace& trace, Hours lookback,
                                            Hours job_length) {
  const double tk = trace.slot_length().hours();
  const auto window = std::min<SlotIndex>(static_cast<SlotIndex>(std::llround(lookback.hours() / tk)),
                                          static_cast<SlotIndex>(trace.size()));
  const auto run = static_cast<SlotIndex>(std::ceil(job_length.hours() / tk));
  if (run <= 0 || window < run) return std::nullopt;

  const auto end = static_cast<SlotIndex>(trace.size());
  const SlotIndex begin = end - window;
  double best = std::numeric_limits<double>::infinity();
  for (SlotIndex s = begin; s + run <= end; ++s) {
    double window_max = 0.0;
    for (SlotIndex i = s; i < s + run; ++i)
      window_max = std::max(window_max, trace.price_at(i).usd());
    best = std::min(best, window_max);
  }
  if (!std::isfinite(best)) return std::nullopt;
  return Money{best};
}

MapReducePlan mapreduce_bid(const SpotPriceModel& master_model, const SpotPriceModel& slave_model,
                            const ParallelJobSpec& job, const MapReduceOptions& options) {
  SPOTBID_EXPECT(options.max_nodes >= 1, "mapreduce_bid: max_nodes must be >= 1");

  MapReducePlan plan;

  // Master: one-time request sized for the unsplit execution time — a
  // conservative lifetime that eq. 20's constraint then relaxes by raising M
  // until the slaves finish within the master's expected uninterrupted run.
  plan.master = one_time_bid(master_model, JobSpec{job.execution_time, Hours{0.0}});
  const Hours master_life = expected_uninterrupted_run(master_model, plan.master.bid);

  // Slaves: Proposition-5 bid (M-independent; see parallel_bid).
  ParallelJobSpec slaves_job = job;
  slaves_job.nodes = 1;
  // Find the smallest feasible M whose completion fits the master's life.
  int chosen = -1;
  BidDecision slave_decision;
  for (int m = 1; m <= options.max_nodes; ++m) {
    slaves_job.nodes = m;
    if (!((job.execution_time + job.overhead_time).hours() >
          static_cast<double>(m) * job.recovery_time.hours()))
      break;  // over-split; larger M only makes it worse
    BidDecision candidate = parallel_bid(slave_model, slaves_job);
    if (!std::isfinite(candidate.expected_completion.hours())) continue;
    if (candidate.expected_completion.hours() <= master_life.hours()) {
      chosen = m;
      slave_decision = candidate;
      break;
    }
    if (m == options.max_nodes) {
      chosen = m;  // eq.-20 constraint unattainable within the cap; take max
      slave_decision = candidate;
    }
  }
  if (chosen < 0) {
    // Even M = 1 was over-split (t_r >= t_s + t_o): fall back to a plain
    // persistent single-instance plan.
    slaves_job.nodes = 1;
    chosen = 1;
    slave_decision = parallel_bid(slave_model, slaves_job);
  }
  plan.nodes = chosen;
  plan.slaves = slave_decision;
  plan.expected_completion = slave_decision.expected_completion;

  // Master cost: charged the conditional expected spot price while the
  // slaves run (it is never interrupted by construction of eq. 20).
  const Money master_rate = master_model.expected_payment(plan.master.bid);
  plan.master.expected_cost = master_rate * plan.expected_completion;
  plan.master.expected_completion = plan.expected_completion;

  plan.expected_total_cost = plan.master.expected_cost + plan.slaves.expected_cost;

  // On-demand baseline: master + M slaves, no interruptions, same split.
  plan.on_demand_completion =
      Hours{(job.execution_time + job.overhead_time).hours() / chosen};
  plan.on_demand_cost =
      master_model.on_demand() * plan.on_demand_completion +
      slave_model.on_demand() * plan.on_demand_completion * static_cast<double>(chosen);
  return plan;
}

}  // namespace spotbid::bidding
