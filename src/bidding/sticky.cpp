#include "spotbid/bidding/sticky.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/optimize.hpp"

namespace spotbid::bidding {

double estimate_persistence(const trace::PriceTrace& trace) {
  SPOTBID_EXPECT(trace.size() >= 2, "estimate_persistence: trace too short");
  const auto prices = trace.prices();

  // Fraction of slots identical to their predecessor.
  std::size_t carried = 0;
  for (std::size_t i = 1; i < prices.size(); ++i)
    if (prices[i] == prices[i - 1]) ++carried;
  const double carry_fraction = static_cast<double>(carried) /
                                static_cast<double>(prices.size() - 1);

  // Redraws collide when the redraw equals the current value; under the
  // marginal law that happens with probability sum_i q_i^2 over atoms
  // (continuous values never collide). Estimate from value frequencies.
  // Atom counts come from a sorted copy, not a hash map: summing q_i^2 in
  // hash-bucket order would make the floating-point total depend on
  // iteration order, which is outside the determinism contract.
  std::vector<double> sorted(prices.begin(), prices.end());
  std::sort(sorted.begin(), sorted.end());
  double collision = 0.0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const std::size_t count = j - i;
    const double q = static_cast<double>(count) / static_cast<double>(prices.size());
    if (count > 1) collision += q * q;
    i = j;
  }
  collision = std::min(collision, 0.999);

  // carry = rho + (1 - rho) * collision  =>  rho = (carry - c) / (1 - c).
  const double rho = (carry_fraction - collision) / (1.0 - collision);
  return std::clamp(rho, 0.0, 1.0 - 1e-9);
}

StickyMetrics sticky_persistent_metrics(const SpotPriceModel& model, Money p,
                                        const JobSpec& job, double rho) {
  SPOTBID_EXPECT(rho >= 0.0 && rho < 1.0, "sticky_persistent_metrics: rho must be in [0, 1)");
  StickyMetrics m;
  const double f = model.acceptance(p);
  if (!(f > 0.0)) return m;  // infeasible: bid never wins

  const double r = job.recovery_time / model.slot_length();
  const double effective_miss = (1.0 - rho) * (1.0 - f);
  const double denom = 1.0 - r * effective_miss;
  if (!(denom > 0.0)) return m;  // eq. 14' violated

  m.feasible = true;
  m.busy_time = Hours{(job.execution_time - job.recovery_time).hours() / denom};
  m.expected_completion = Hours{m.busy_time.hours() / f};
  const double transitions =
      m.expected_completion.hours() / model.slot_length().hours() * (1.0 - rho) * f * (1.0 - f);
  m.expected_interruptions = std::max(transitions - 1.0, 0.0);
  m.expected_cost = model.expected_payment(p) * m.busy_time;
  return m;
}

BidDecision sticky_persistent_bid(const SpotPriceModel& model, const JobSpec& job, double rho) {
  SPOTBID_EXPECT(rho >= 0.0 && rho < 1.0, "sticky_persistent_bid: rho must be in [0, 1)");
  SPOTBID_EXPECT(job.execution_time > job.recovery_time,
                 "sticky_persistent_bid: execution time must exceed recovery time");

  // eq. 16': same psi, target scaled by the carry-over survival.
  std::optional<Money> closed_form;
  if (job.recovery_time.hours() > 0.0) {
    const double target =
        model.slot_length().hours() / ((1.0 - rho) * job.recovery_time.hours()) - 1.0;
    closed_form = psi_inverse(model, target);
  }

  const double lo = model.min_bid().usd();
  const double hi = model.max_bid().usd();
  const auto objective = [&](double p) {
    const auto m = sticky_persistent_metrics(model, Money{p}, job, rho);
    return m.feasible ? m.expected_cost.usd() : 1e30;
  };
  double bid = numeric::grid_then_golden(objective, lo, hi, 512).x;
  if (closed_form &&
      objective(closed_form->usd()) <= objective(bid) + 1e-12 * (1.0 + objective(bid))) {
    bid = closed_form->usd();
  }

  const auto metrics = sticky_persistent_metrics(model, Money{bid}, job, rho);
  BidDecision d;
  d.bid = Money{bid};
  d.acceptance = model.acceptance(d.bid);
  d.expected_cost = metrics.expected_cost;
  d.expected_completion = metrics.expected_completion;
  d.expected_interruptions = metrics.expected_interruptions;
  d.rationale = "correlation-aware Prop. 5: psi^{-1}(t_k / ((1-rho) t_r) - 1)";

  const Money on_demand_cost = model.on_demand() * job.execution_time;
  if (!metrics.feasible || d.expected_cost.usd() > on_demand_cost.usd()) {
    d.use_on_demand = true;
    d.expected_cost = on_demand_cost;
    d.expected_completion = job.execution_time;
    d.rationale += " [on-demand wins]";
  }
  return d;
}

}  // namespace spotbid::bidding
