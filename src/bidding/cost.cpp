#include "spotbid/bidding/cost.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"

namespace spotbid::bidding {

namespace {

/// F(p) with the CDF invariant enforced: the bidding formulas divide by f
/// and (1 - f), so a distribution returning outside [0, 1] (or NaN) would
/// silently corrupt every downstream cost.
double checked_acceptance(const SpotPriceModel& model, Money p) {
  SPOTBID_REQUIRE_FINITE(p.usd(), "bid price p");
  const double f = model.acceptance(p);
  SPOTBID_REQUIRE_PROB(f, "acceptance F_pi(p)");
  return f;
}

}  // namespace

Hours expected_uninterrupted_run(const SpotPriceModel& model, Money p) {
  const double f = checked_acceptance(model, p);
  // eq. 8 divides by 1 - F(p): at the support top F(p) = 1 the run is never
  // interrupted. Return +infinity explicitly rather than dividing by zero
  // (0/0-style noise when t_k underflows, and UBSan flags the intent).
  if (f >= 1.0) return Hours{kInfiniteCost};
  return Hours{model.slot_length().hours() / (1.0 - f)};
}

Money one_time_expected_cost(const SpotPriceModel& model, Money p, Hours execution_time) {
  SPOTBID_EXPECT(execution_time.hours() >= 0.0,
                 "one_time_expected_cost: execution time must be >= 0");
  const double f = checked_acceptance(model, p);
  if (!(f > 0.0)) return Money{kInfiniteCost};
  return Money{model.partial_expectation(p) / f} * execution_time;
}

double one_time_survival_probability(const SpotPriceModel& model, Money p, Hours execution_time) {
  SPOTBID_EXPECT(execution_time.hours() >= 0.0,
                 "one_time_survival_probability: execution time must be >= 0");
  const double f = checked_acceptance(model, p);
  if (f >= 1.0) return 1.0;  // F(p) = 1: no slot can interrupt the run
  const double slots = std::ceil(execution_time / model.slot_length());
  return std::pow(f, slots);
}

bool persistent_feasible(const SpotPriceModel& model, Money p, Hours recovery_time) {
  SPOTBID_EXPECT(recovery_time.hours() >= 0.0,
                 "persistent_feasible: recovery time must be >= 0");
  // eq. 14: t_r < t_k / (1 - F(p)). Equivalently 1 - r (1 - F) > 0 with
  // r = t_r / t_k, the positive-denominator condition of eq. 13.
  const double r = recovery_time / model.slot_length();
  const double f = checked_acceptance(model, p);
  return 1.0 - r * (1.0 - f) > 0.0;
}

namespace {

/// Denominator of eq. 13/17: 1 - (t_r/t_k)(1 - F(p)); <= 0 means infeasible.
double busy_denominator(const SpotPriceModel& model, Money p, Hours recovery_time) {
  const double r = recovery_time / model.slot_length();
  return 1.0 - r * (1.0 - checked_acceptance(model, p));
}

}  // namespace

Hours persistent_busy_time(const SpotPriceModel& model, Money p, const JobSpec& job) {
  SPOTBID_EXPECT(job.execution_time >= job.recovery_time,
                 "persistent_busy_time: eq. 13 needs t_s >= t_r");
  const double denom = busy_denominator(model, p, job.recovery_time);
  if (!(denom > 0.0)) return Hours{kInfiniteCost};
  return Hours{(job.execution_time - job.recovery_time).hours() / denom};
}

Hours persistent_completion_time(const SpotPriceModel& model, Money p, const JobSpec& job) {
  const double f = model.acceptance(p);
  if (!(f > 0.0)) return Hours{kInfiniteCost};
  const Hours busy = persistent_busy_time(model, p, job);
  if (!std::isfinite(busy.hours())) return busy;
  return Hours{busy.hours() / f};
}

double persistent_expected_interruptions(const SpotPriceModel& model, Money p,
                                         const JobSpec& job) {
  const double f = model.acceptance(p);
  const Hours completion = persistent_completion_time(model, p, job);
  if (!std::isfinite(completion.hours())) return kInfiniteCost;
  const double transitions = completion.hours() / model.slot_length().hours() * f * (1.0 - f);
  return std::max(transitions - 1.0, 0.0);
}

Money persistent_expected_cost(const SpotPriceModel& model, Money p, const JobSpec& job) {
  const double f = model.acceptance(p);
  if (!(f > 0.0)) return Money{kInfiniteCost};
  const Hours busy = persistent_busy_time(model, p, job);
  if (!std::isfinite(busy.hours())) return Money{kInfiniteCost};
  return Money{model.partial_expectation(p) / f} * busy;
}

Hours parallel_total_busy_time(const SpotPriceModel& model, Money p, const ParallelJobSpec& job) {
  if (job.nodes < 1) throw InvalidArgument{"parallel_total_busy_time: nodes must be >= 1"};
  const double denom = busy_denominator(model, p, job.recovery_time);
  if (!(denom > 0.0)) return Hours{kInfiniteCost};
  const double numer = (job.execution_time + job.overhead_time).hours() -
                       static_cast<double>(job.nodes) * job.recovery_time.hours();
  if (!(numer > 0.0)) return Hours{kInfiniteCost};  // over-split: M t_r >= t_s + t_o
  return Hours{numer / denom};
}

Hours parallel_completion_time(const SpotPriceModel& model, Money p, const ParallelJobSpec& job) {
  const double f = model.acceptance(p);
  if (!(f > 0.0)) return Hours{kInfiniteCost};
  const Hours total = parallel_total_busy_time(model, p, job);
  if (!std::isfinite(total.hours())) return total;
  // eq. 18: equal sub-jobs share the total busy time; divide by F to count
  // idle slots.
  return Hours{total.hours() / static_cast<double>(job.nodes) / f};
}

Money parallel_expected_cost(const SpotPriceModel& model, Money p, const ParallelJobSpec& job) {
  const double f = model.acceptance(p);
  if (!(f > 0.0)) return Money{kInfiniteCost};
  const Hours total = parallel_total_busy_time(model, p, job);
  if (!std::isfinite(total.hours())) return Money{kInfiniteCost};
  return Money{model.partial_expectation(p) / f} * total;
}

double psi(const SpotPriceModel& model, Money p) {
  const double f = model.acceptance(p);
  if (!(f > 0.0)) return kInfiniteCost;  // below the support: must bid higher
  const double a = model.partial_expectation(p);
  const double denom = p.usd() * f - a;  // integral of (p - x) f(x) dx
  // denom -> 0+ as p approaches the support minimum (or a floor atom);
  // psi diverges there, so return its right-limit rather than throwing.
  if (!(denom > 0.0)) return kInfiniteCost;
  return f * (a / denom - 1.0);
}

}  // namespace spotbid::bidding
