#include "spotbid/numeric/rng.hpp"

#include <cmath>

namespace spotbid::numeric {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  // Mix the stream index into the parent seed with two splitmix64 rounds;
  // distinct (parent, stream) pairs map to well-separated seeds.
  std::uint64_t s = parent ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  // lo + u*(hi - lo) can round up to hi (or even past it) when u is close
  // to 1 and the product rounds unfavorably — e.g. (0.1, 0.3) can produce
  // 0.30000000000000004, and for (1, 1 + 2^-52) half of all draws round to
  // hi. Clamp to the largest double below hi to honor the [lo, hi)
  // contract.
  const double x = lo + (hi - lo) * uniform();
  if (x < hi) return x;
  return std::nextafter(hi, lo);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential() {
  // -log(1 - U) with U in [0, 1); 1 - U in (0, 1] avoids log(0).
  return -std::log1p(-uniform());
}

double Rng::normal() {
  // Box-Muller; draw u1 in (0, 1].
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586476925286766559 * u2);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace spotbid::numeric
