#include "spotbid/numeric/roots.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"

namespace spotbid::numeric {

namespace {

bool opposite_signs(double a, double b) {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}

}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& options) {
  SPOTBID_EXPECT(lo <= hi, "bisect: lo > hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  SPOTBID_EXPECT(opposite_signs(flo, fhi), "bisect: f(lo) and f(hi) have the same sign");

  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result = {mid, fmid, i + 1, false};
    if (std::abs(fmid) <= options.f_tolerance || (hi - lo) <= options.x_tolerance) {
      result.converged = true;
      return result;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  result.converged = (hi - lo) <= options.x_tolerance * 16;
  return result;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& options) {
  SPOTBID_EXPECT(lo <= hi, "brent: lo > hi");
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  SPOTBID_EXPECT(opposite_signs(fa, fb), "brent: f(lo) and f(hi) have the same sign");

  // Classic Brent-Dekker as in Numerical Recipes / Brent (1973).
  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * 2.220446049250313e-16 * std::abs(b) + 0.5 * options.x_tolerance;
    const double m = 0.5 * (c - b);
    result = {b, fb, i + 1, false};
    if (std::abs(m) <= tol || fb == 0.0 || std::abs(fb) <= options.f_tolerance) {
      result.converged = true;
      return result;
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m;  // bisection
      e = m;
    } else {
      double p;
      double q;
      const double s = fb / fa;
      if (a == c) {
        // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // inverse quadratic interpolation
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;  // accept interpolation
        d = p / q;
      } else {
        d = m;  // fall back to bisection
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return result;
}

std::optional<std::pair<double, double>> find_bracket(const std::function<double(double)>& f,
                                                      double lo, double hi, int n_grid) {
  if (!(lo < hi) || n_grid < 1) return std::nullopt;
  double x_prev = lo;
  double f_prev = f(lo);
  for (int i = 1; i <= n_grid; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / n_grid;
    const double fx = f(x);
    if (opposite_signs(f_prev, fx)) return std::make_pair(x_prev, x);
    x_prev = x;
    f_prev = fx;
  }
  return std::nullopt;
}

}  // namespace spotbid::numeric
