#include "spotbid/numeric/integrate.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"

namespace spotbid::numeric {

double trapezoid(const std::function<double(double)>& f, double lo, double hi, int n) {
  SPOTBID_EXPECT(n >= 1, "trapezoid: n < 1");
  if (lo == hi) return 0.0;
  const double h = (hi - lo) / n;
  double sum = 0.5 * (f(lo) + f(hi));
  for (int i = 1; i < n; ++i) sum += f(lo + i * h);
  return sum * h;
}

double simpson(const std::function<double(double)>& f, double lo, double hi, int n) {
  SPOTBID_EXPECT(n >= 2, "simpson: n < 2");
  if (lo == hi) return 0.0;
  if (n % 2 != 0) ++n;
  const double h = (hi - lo) / n;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < n; ++i) sum += f(lo + i * h) * ((i % 2 == 1) ? 4.0 : 2.0);
  return sum * h / 3.0;
}

namespace {

/// Simpson's rule over [a, b] given endpoint and midpoint values.
double simpson_segment(double a, double b, double fa, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a, double fa, double b,
                     double fb, double m, double fm, double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson_segment(a, m, fa, fm, flm);
  const double right = simpson_segment(m, b, fm, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double adaptive_simpson(const std::function<double(double)>& f, double lo, double hi, double tol,
                        int max_depth) {
  if (lo == hi) return 0.0;
  const double m = 0.5 * (lo + hi);
  const double flo = f(lo);
  const double fhi = f(hi);
  const double fm = f(m);
  const double whole = simpson_segment(lo, hi, flo, fhi, fm);
  return adaptive_step(f, lo, flo, hi, fhi, m, fm, whole, tol, max_depth);
}

}  // namespace spotbid::numeric
