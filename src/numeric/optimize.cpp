#include "spotbid/numeric/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "spotbid/core/contracts.hpp"

namespace spotbid::numeric {

namespace {

constexpr double kGolden = detail::kGoldenRatio;

}  // namespace

MinimizeResult golden_section(const std::function<double(double)>& f, double lo, double hi,
                              const MinimizeOptions& options) {
  return detail::golden_section_impl(f, lo, hi, options);
}

MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo, double hi,
                              const MinimizeOptions& options) {
  SPOTBID_EXPECT(lo <= hi, "brent_minimize: lo > hi");
  // Brent (1973) localmin, as in Numerical Recipes.
  const double cgold = 1.0 - kGolden;
  double a = lo;
  double b = hi;
  double x = a + cgold * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  MinimizeResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    const double xm = 0.5 * (a + b);
    const double tol1 = options.x_tolerance * std::abs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    result = {x, fx, i + 1, false};
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      return result;
    }
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic fit through x, v, w.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_old = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm >= x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = cgold * e;
    }
    const double u = (std::abs(d) >= tol1) ? x + d : x + ((d >= 0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) a = x; else b = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  return result;
}

MinimizeResult grid_then_golden(const std::function<double(double)>& f, double lo, double hi,
                                int n_grid, const MinimizeOptions& options) {
  return detail::grid_then_golden_impl(f, lo, hi, n_grid, options);
}

SimplexResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                          std::vector<double> x0, const SimplexOptions& options) {
  const std::size_t n = x0.size();
  SPOTBID_EXPECT(n != 0, "nelder_mead: empty start point");

  // Build initial simplex: x0 plus n points perturbed along each axis.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    const double step = (x0[i] != 0.0) ? options.initial_step * std::abs(x0[i])
                                       : options.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = f(simplex[i]);

  std::vector<std::size_t> order(n + 1);
  SimplexResult result;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });
    const std::size_t lo = order.front();
    const std::size_t hi = order.back();
    const std::size_t second_hi = order[n - 1];

    result = {simplex[lo], fvals[lo], iter + 1, false};

    // Convergence: spread of f values and simplex diameter.
    const double f_spread = std::abs(fvals[hi] - fvals[lo]);
    double diameter = 0.0;
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        diameter = std::max(diameter, std::abs(simplex[i][j] - simplex[lo][j]));
    if (f_spread <= options.f_tolerance || diameter <= options.x_tolerance) {
      result.converged = true;
      return result;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == hi) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coef) {
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j)
        x[j] = centroid[j] + coef * (simplex[hi][j] - centroid[j]);
      return x;
    };

    // Reflection.
    std::vector<double> xr = blend(-1.0);
    const double fr = f(xr);
    if (fr < fvals[lo]) {
      // Expansion.
      std::vector<double> xe = blend(-2.0);
      const double fe = f(xe);
      if (fe < fr) {
        simplex[hi] = std::move(xe);
        fvals[hi] = fe;
      } else {
        simplex[hi] = std::move(xr);
        fvals[hi] = fr;
      }
    } else if (fr < fvals[second_hi]) {
      simplex[hi] = std::move(xr);
      fvals[hi] = fr;
    } else {
      // Contraction (outside if fr improved the worst, inside otherwise).
      const double coef = (fr < fvals[hi]) ? -0.5 : 0.5;
      std::vector<double> xc = blend(coef);
      const double fc = f(xc);
      if (fc < std::min(fr, fvals[hi])) {
        simplex[hi] = std::move(xc);
        fvals[hi] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == lo) continue;
          for (std::size_t j = 0; j < n; ++j)
            simplex[i][j] = simplex[lo][j] + 0.5 * (simplex[i][j] - simplex[lo][j]);
          fvals[i] = f(simplex[i]);
        }
      }
    }
  }
  return result;
}

}  // namespace spotbid::numeric
