#include "spotbid/numeric/stats.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"

namespace spotbid::numeric {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double kahan_sum(std::span<const double> xs) {
  double sum = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double mean(std::span<const double> xs) {
  SPOTBID_EXPECT(!xs.empty(), "mean: empty");
  return kahan_sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  SPOTBID_EXPECT(!xs.empty(), "quantile: empty");
  SPOTBID_REQUIRE_PROB(q, "quantile: q");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i);
  return sorted[i] + frac * (sorted[i + 1] - sorted[i]);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  SPOTBID_EXPECT(lag < n, "autocorrelation: lag >= n");
  if (lag == 0) return 1.0;
  const double m = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) den += (xs[i] - m) * (xs[i] - m);
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) num += (xs[i] - m) * (xs[i + lag] - m);
  return num / den;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  SPOTBID_EXPECT(lo < hi, "Histogram: lo >= hi");
  SPOTBID_EXPECT(bins != 0, "Histogram: zero bins");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double w = bin_width();
  auto i = static_cast<long>((x - lo_) / w);
  i = std::clamp(i, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) /
         (static_cast<double>(total_) * bin_width());
}

std::vector<double> Histogram::densities() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = density(i);
  return out;
}

double mean_squared_error(std::span<const double> a, std::span<const double> b) {
  SPOTBID_EXPECT(a.size() == b.size(), "mean_squared_error: size mismatch");
  SPOTBID_EXPECT(!a.empty(), "mean_squared_error: empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += (a[i] - b[i]) * (a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace spotbid::numeric
