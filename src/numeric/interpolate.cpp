#include "spotbid/numeric/interpolate.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"

namespace spotbid::numeric {

namespace {

void validate_grid(const std::vector<double>& x, const std::vector<double>& y) {
  SPOTBID_EXPECT(x.size() == y.size(), "interpolant: size mismatch");
  SPOTBID_EXPECT(x.size() >= 2, "interpolant: need at least two knots");
  for (std::size_t i = 1; i < x.size(); ++i)
    SPOTBID_EXPECT(x[i - 1] < x[i], "interpolant: x not strictly increasing");
}

/// Index of the segment containing q: largest i with x[i] <= q, clamped to
/// [0, n-2].
std::size_t segment_of(const std::vector<double>& x, double q) {
  const auto it = std::upper_bound(x.begin(), x.end(), q);
  if (it == x.begin()) return 0;
  const std::size_t i = static_cast<std::size_t>(it - x.begin()) - 1;
  return std::min(i, x.size() - 2);
}

}  // namespace

LinearInterpolant::LinearInterpolant(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  validate_grid(x_, y_);
}

double LinearInterpolant::operator()(double q) const {
  if (x_.empty()) throw ModelError{"LinearInterpolant: empty"};
  if (q <= x_.front()) return y_.front();
  if (q >= x_.back()) return y_.back();
  const std::size_t i = segment_of(x_, q);
  const double t = (q - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearInterpolant::derivative(double q) const {
  if (x_.empty()) throw ModelError{"LinearInterpolant: empty"};
  if (q < x_.front() || q > x_.back()) return 0.0;
  const std::size_t i = segment_of(x_, q);
  return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

MonotoneCubicInterpolant::MonotoneCubicInterpolant(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  validate_grid(x_, y_);
  const std::size_t n = x_.size();
  std::vector<double> d(n - 1);  // secant slopes
  for (std::size_t i = 0; i + 1 < n; ++i) d[i] = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);

  slope_.assign(n, 0.0);
  slope_.front() = d.front();
  slope_.back() = d.back();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (d[i - 1] * d[i] <= 0.0) {
      slope_[i] = 0.0;  // local extremum: flatten to preserve monotonicity
    } else {
      // Harmonic mean weighting (Fritsch-Carlson).
      const double w1 = 2.0 * (x_[i + 1] - x_[i]) + (x_[i] - x_[i - 1]);
      const double w2 = (x_[i + 1] - x_[i]) + 2.0 * (x_[i] - x_[i - 1]);
      slope_[i] = (w1 + w2) / (w1 / d[i - 1] + w2 / d[i]);
    }
  }
  // Clamp endpoint slopes so no segment overshoots.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (d[i] == 0.0) {
      slope_[i] = 0.0;
      slope_[i + 1] = 0.0;
      continue;
    }
    const double a = slope_[i] / d[i];
    const double b = slope_[i + 1] / d[i];
    const double r = a * a + b * b;
    if (r > 9.0) {
      const double scale = 3.0 / std::sqrt(r);
      slope_[i] = scale * a * d[i];
      slope_[i + 1] = scale * b * d[i];
    }
  }
}

double MonotoneCubicInterpolant::operator()(double q) const {
  if (x_.empty()) throw ModelError{"MonotoneCubicInterpolant: empty"};
  if (q <= x_.front()) return y_.front();
  if (q >= x_.back()) return y_.back();
  const std::size_t i = segment_of(x_, q);
  const double h = x_[i + 1] - x_[i];
  const double t = (q - x_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * slope_[i] + h01 * y_[i + 1] + h11 * h * slope_[i + 1];
}

double MonotoneCubicInterpolant::derivative(double q) const {
  if (x_.empty()) throw ModelError{"MonotoneCubicInterpolant: empty"};
  if (q < x_.front() || q > x_.back()) return 0.0;
  const std::size_t i = segment_of(x_, q);
  const double h = x_[i + 1] - x_[i];
  const double t = (q - x_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = 3 * t2 - 4 * t + 1;
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = 3 * t2 - 2 * t;
  return dh00 * y_[i] + dh10 * slope_[i] + dh01 * y_[i + 1] + dh11 * slope_[i + 1];
}

}  // namespace spotbid::numeric
