#include "spotbid/dist/uniform.hpp"

#include <algorithm>
#include <sstream>

#include "spotbid/core/types.hpp"

namespace spotbid::dist {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw InvalidArgument{"Uniform: lo >= hi"};
}

double Uniform::pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw InvalidArgument{"Uniform::quantile: q outside [0, 1]"};
  return lo_ + q * (hi_ - lo_);
}

double Uniform::sample(numeric::Rng& rng) const { return rng.uniform(lo_, hi_); }

double Uniform::mean() const { return 0.5 * (lo_ + hi_); }

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double Uniform::partial_expectation(double p) const {
  const double x = std::clamp(p, lo_, hi_);
  // integral_{lo}^{x} t / (hi - lo) dt
  return (x * x - lo_ * lo_) / (2.0 * (hi_ - lo_));
}

std::string Uniform::name() const {
  std::ostringstream os;
  os << "Uniform(lo=" << lo_ << ", hi=" << hi_ << ")";
  return os.str();
}

}  // namespace spotbid::dist
