#include "spotbid/dist/uniform.hpp"

#include <algorithm>
#include <sstream>

#include "spotbid/core/contracts.hpp"

namespace spotbid::dist {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  SPOTBID_REQUIRE_FINITE(lo, "Uniform: lo");
  SPOTBID_REQUIRE_FINITE(hi, "Uniform: hi");
  SPOTBID_EXPECT(lo < hi, "Uniform: lo must be < hi");
}

double Uniform::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Uniform::pdf: x");
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Uniform::cdf: x");
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "Uniform::quantile: q");
  return lo_ + q * (hi_ - lo_);
}

double Uniform::sample(numeric::Rng& rng) const { return rng.uniform(lo_, hi_); }

double Uniform::mean() const { return 0.5 * (lo_ + hi_); }

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double Uniform::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "Uniform::partial_expectation: p");
  const double x = std::clamp(p, lo_, hi_);
  // integral_{lo}^{x} t / (hi - lo) dt
  return (x * x - lo_ * lo_) / (2.0 * (hi_ - lo_));
}

std::string Uniform::name() const {
  std::ostringstream os;
  os << "Uniform(lo=" << lo_ << ", hi=" << hi_ << ")";
  return os.str();
}

}  // namespace spotbid::dist
