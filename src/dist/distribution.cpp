#include "spotbid/dist/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/integrate.hpp"

namespace spotbid::dist {

double Distribution::cdf_left(double x) const { return cdf(x); }

double Distribution::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "Distribution::partial_expectation: p");
  const double lo = support_lo();
  if (p <= lo) return 0.0;
  // Cap an unbounded support at the 1 - 1e-12 quantile: beyond it the
  // integrand's remaining mass is negligible for the finite-mean families
  // this library uses.
  double hi = std::min(p, support_hi());
  if (!std::isfinite(hi)) hi = quantile(1.0 - 1e-12);
  hi = std::min(hi, p);
  if (hi <= lo) return 0.0;
  return numeric::adaptive_simpson([this](double x) { return x * pdf(x); }, lo, hi, 1e-12);
}

}  // namespace spotbid::dist
