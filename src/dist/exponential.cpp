#include "spotbid/dist/exponential.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "spotbid/core/contracts.hpp"

namespace spotbid::dist {

Exponential::Exponential(double eta, double shift) : eta_(eta), shift_(shift) {
  SPOTBID_REQUIRE_FINITE(eta, "Exponential: eta");
  SPOTBID_REQUIRE_FINITE(shift, "Exponential: shift");
  SPOTBID_EXPECT(eta > 0.0, "Exponential: eta must be > 0");
}

double Exponential::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Exponential::pdf: x");
  if (x < shift_) return 0.0;
  return std::exp(-(x - shift_) / eta_) / eta_;
}

double Exponential::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Exponential::cdf: x");
  if (x <= shift_) return 0.0;
  return -std::expm1(-(x - shift_) / eta_);
}

double Exponential::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "Exponential::quantile: q");
  if (q == 1.0) return std::numeric_limits<double>::infinity();
  return shift_ - eta_ * std::log1p(-q);
}

double Exponential::sample(numeric::Rng& rng) const { return shift_ + eta_ * rng.exponential(); }

double Exponential::mean() const { return shift_ + eta_; }

double Exponential::variance() const { return eta_ * eta_; }

double Exponential::support_hi() const { return std::numeric_limits<double>::infinity(); }

double Exponential::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "Exponential::partial_expectation: p");
  if (p <= shift_) return 0.0;
  // integral_shift^p x (1/eta) e^{-(x-shift)/eta} dx
  //   = (shift + eta) - (p + eta) e^{-(p-shift)/eta}   [shift + eta = mean]
  const double z = (p - shift_) / eta_;
  if (std::isinf(p)) return shift_ + eta_;  // full mean; avoids inf * 0
  return (shift_ + eta_) - (p + eta_) * std::exp(-z);
}

std::string Exponential::name() const {
  std::ostringstream os;
  os << "Exponential(eta=" << eta_;
  if (shift_ != 0.0) os << ", shift=" << shift_;
  os << ")";
  return os.str();
}

}  // namespace spotbid::dist
