#include "spotbid/dist/pareto.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "spotbid/core/contracts.hpp"

namespace spotbid::dist {

Pareto::Pareto(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  SPOTBID_REQUIRE_FINITE(alpha, "Pareto: alpha");
  SPOTBID_REQUIRE_FINITE(xm, "Pareto: xm");
  SPOTBID_EXPECT(alpha > 0.0, "Pareto: alpha must be > 0");
  SPOTBID_EXPECT(xm > 0.0, "Pareto: xm must be > 0");
}

double Pareto::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Pareto::pdf: x");
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Pareto::cdf: x");
  if (x <= xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "Pareto::quantile: q");
  if (q == 1.0) return std::numeric_limits<double>::infinity();
  return xm_ / std::pow(1.0 - q, 1.0 / alpha_);
}

double Pareto::sample(numeric::Rng& rng) const {
  // Inversion with U in (0, 1].
  return xm_ / std::pow(1.0 - rng.uniform(), 1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double m = xm_;
  return m * m * alpha_ / ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

double Pareto::support_hi() const { return std::numeric_limits<double>::infinity(); }

double Pareto::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "Pareto::partial_expectation: p");
  if (p <= xm_) return 0.0;
  if (alpha_ == 1.0) {
    // integral xm^1 / x dx = xm * log(p / xm)
    return xm_ * std::log(p / xm_);
  }
  // integral_{xm}^{p} alpha xm^a x^{-a} dx
  //   = alpha xm^a / (1 - a) * (p^{1-a} - xm^{1-a})
  const double a = alpha_;
  return a * std::pow(xm_, a) / (1.0 - a) * (std::pow(p, 1.0 - a) - std::pow(xm_, 1.0 - a));
}

std::string Pareto::name() const {
  std::ostringstream os;
  os << "Pareto(alpha=" << alpha_ << ", xm=" << xm_ << ")";
  return os.str();
}

BoundedPareto::BoundedPareto(double alpha, double xm, double hi)
    : alpha_(alpha), xm_(xm), hi_(hi) {
  SPOTBID_REQUIRE_FINITE(alpha, "BoundedPareto: alpha");
  SPOTBID_REQUIRE_FINITE(xm, "BoundedPareto: xm");
  SPOTBID_REQUIRE_FINITE(hi, "BoundedPareto: hi");
  SPOTBID_EXPECT(alpha > 0.0, "BoundedPareto: alpha must be > 0");
  SPOTBID_EXPECT(xm > 0.0, "BoundedPareto: xm must be > 0");
  SPOTBID_EXPECT(hi > xm, "BoundedPareto: hi must exceed xm");
  norm_ = 1.0 - std::pow(xm_ / hi_, alpha_);
}

double BoundedPareto::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "BoundedPareto::pdf: x");
  if (x < xm_ || x > hi_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0) / norm_;
}

double BoundedPareto::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "BoundedPareto::cdf: x");
  if (x <= xm_) return 0.0;
  if (x >= hi_) return 1.0;
  return (1.0 - std::pow(xm_ / x, alpha_)) / norm_;
}

double BoundedPareto::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "BoundedPareto::quantile: q");
  return xm_ / std::pow(1.0 - q * norm_, 1.0 / alpha_);
}

double BoundedPareto::sample(numeric::Rng& rng) const { return quantile(rng.uniform()); }

double BoundedPareto::mean() const {
  if (alpha_ == 1.0) return xm_ * std::log(hi_ / xm_) / norm_;
  const double a = alpha_;
  return a * std::pow(xm_, a) / (1.0 - a) * (std::pow(hi_, 1.0 - a) - std::pow(xm_, 1.0 - a)) /
         norm_;
}

double BoundedPareto::variance() const {
  // E[X^2] - mean^2, with E[X^2] in closed form.
  const double a = alpha_;
  double ex2;
  if (a == 2.0) {
    ex2 = 2.0 * xm_ * xm_ * std::log(hi_ / xm_) / norm_;
  } else {
    ex2 = a * std::pow(xm_, a) / (2.0 - a) *
          (std::pow(hi_, 2.0 - a) - std::pow(xm_, 2.0 - a)) / norm_;
  }
  const double m = mean();
  return ex2 - m * m;
}

std::string BoundedPareto::name() const {
  std::ostringstream os;
  os << "BoundedPareto(alpha=" << alpha_ << ", xm=" << xm_ << ", hi=" << hi_ << ")";
  return os.str();
}

}  // namespace spotbid::dist
