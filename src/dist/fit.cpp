#include "spotbid/dist/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "spotbid/core/types.hpp"
#include "spotbid/numeric/optimize.hpp"
#include "spotbid/numeric/rng.hpp"

namespace spotbid::dist {

double histogram_mse(const PdfFamily& family, const std::vector<double>& params,
                     const numeric::Histogram& hist) {
  double sum = 0.0;
  for (std::size_t i = 0; i < hist.bins(); ++i) {
    const double x = hist.bin_center(i);
    const double diff = family(params, x) - hist.density(i);
    sum += diff * diff;
  }
  return sum / static_cast<double>(hist.bins());
}

FitResult fit_histogram(const PdfFamily& family, const numeric::Histogram& hist,
                        std::vector<double> x0, const FitBounds& bounds) {
  if (x0.empty()) throw InvalidArgument{"fit_histogram: empty start point"};
  const bool bounded = !bounds.lo.empty() || !bounds.hi.empty();
  if (bounded && (bounds.lo.size() != x0.size() || bounds.hi.size() != x0.size()))
    throw InvalidArgument{"fit_histogram: bounds size mismatch"};

  auto objective = [&](const std::vector<double>& params) {
    double penalty = 0.0;
    std::vector<double> clamped = params;
    if (bounded) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i] < bounds.lo[i]) {
          const double d = bounds.lo[i] - params[i];
          penalty += 1e3 * d * d;
          clamped[i] = bounds.lo[i];
        } else if (params[i] > bounds.hi[i]) {
          const double d = params[i] - bounds.hi[i];
          penalty += 1e3 * d * d;
          clamped[i] = bounds.hi[i];
        }
      }
    }
    const double mse = histogram_mse(family, clamped, hist);
    return (std::isfinite(mse) ? mse : 1e30) + penalty;
  };

  numeric::SimplexOptions options;
  options.max_iterations = 4000;
  options.f_tolerance = 1e-18;

  // Multi-start: x0 itself plus deterministic perturbations.
  numeric::Rng rng{0xf17f17ULL};
  FitResult best;
  best.mse = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::vector<double> start = x0;
    if (attempt > 0) {
      for (double& v : start) v *= rng.uniform(0.5, 1.8);
      if (bounded) {
        for (std::size_t i = 0; i < start.size(); ++i)
          start[i] = std::clamp(start[i], bounds.lo[i], bounds.hi[i]);
      }
    }
    const auto result = numeric::nelder_mead(objective, start, options);
    std::vector<double> params = result.x;
    if (bounded) {
      for (std::size_t i = 0; i < params.size(); ++i)
        params[i] = std::clamp(params[i], bounds.lo[i], bounds.hi[i]);
    }
    const double mse = histogram_mse(family, params, hist);
    if (mse < best.mse) {
      best.params = std::move(params);
      best.mse = mse;
      best.iterations = result.iterations;
      best.converged = result.converged;
    }
  }
  return best;
}

}  // namespace spotbid::dist
