#include "spotbid/dist/lognormal.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/roots.hpp"

namespace spotbid::dist {

namespace {

constexpr double kSqrt2 = 1.4142135623730950488;

double normal_cdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

/// Inverse standard-normal CDF (Acklam's rational approximation, refined by
/// one Newton step; |error| < 1e-12 over (0, 1)).
double normal_quantile(double p) {
  // Coefficients for the central and tail rational approximations.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

}  // namespace

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SPOTBID_REQUIRE_FINITE(mu, "LogNormal: mu");
  SPOTBID_REQUIRE_FINITE(sigma, "LogNormal: sigma");
  SPOTBID_EXPECT(sigma > 0.0, "LogNormal: sigma must be > 0");
}

double LogNormal::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "LogNormal::pdf: x");
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
}

double LogNormal::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "LogNormal::cdf: x");
  if (x <= 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "LogNormal::quantile: q");
  if (q == 0.0) return 0.0;
  if (q == 1.0) return std::numeric_limits<double>::infinity();
  return std::exp(mu_ + sigma_ * normal_quantile(q));
}

double LogNormal::sample(numeric::Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::support_hi() const { return std::numeric_limits<double>::infinity(); }

std::string LogNormal::name() const {
  std::ostringstream os;
  os << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

}  // namespace spotbid::dist
