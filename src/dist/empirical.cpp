#include "spotbid/dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/stats.hpp"

namespace spotbid::dist {

Empirical::Empirical(std::span<const double> samples) : n_(samples.size()) {
  SPOTBID_EXPECT(n_ >= 2, "Empirical: need at least two samples");
  for (double s : samples) SPOTBID_REQUIRE_FINITE(s, "Empirical: sample");

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  mean_ = numeric::mean(sorted);
  var_ = numeric::variance(sorted);

  // Collapse duplicates into (value, cumulative probability) knots.
  x_.reserve(sorted.size());
  cum_.reserve(sorted.size());
  std::size_t seen = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    seen += j - i;
    x_.push_back(sorted[i]);
    cum_.push_back(static_cast<double>(seen) / static_cast<double>(n_));
    i = j;
  }
  if (x_.size() < 2) throw InvalidArgument{"Empirical: need at least two distinct values"};
}

double Empirical::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Empirical::cdf: x");
  if (x < x_.front()) return 0.0;
  if (x >= x_.back()) return 1.0;
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return cum_[i] + t * (cum_[i + 1] - cum_[i]);
}

double Empirical::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Empirical::pdf: x");
  if (x < x_.front() || x > x_.back()) return 0.0;
  auto it = std::upper_bound(x_.begin(), x_.end(), x);
  std::size_t i = (it == x_.begin()) ? 0 : static_cast<std::size_t>(it - x_.begin()) - 1;
  i = std::min(i, x_.size() - 2);
  return (cum_[i + 1] - cum_[i]) / (x_[i + 1] - x_[i]);
}

double Empirical::quantile(double q) const {
  // Generalized inverse Q(q) = inf{x : F(x) >= q} of the interpolated
  // ECDF. F is continuous and strictly increasing on [x_0, x_k] with
  // F(x_0) = cum_[0] > 0, so:
  //  - q <= cum_[0] maps to x_0 (the atom at the minimum absorbs the
  //    whole lower tail: F(x_0) = cum_[0] >= q already);
  //  - otherwise Q is the exact piecewise-linear inverse, giving the
  //    round-trip contracts cdf(quantile(q)) >= q and
  //    quantile(cdf(x)) <= x (with equality away from the atom).
  SPOTBID_REQUIRE_PROB(q, "Empirical::quantile: q");
  if (q <= cum_.front()) return x_.front();
  if (q >= 1.0) return x_.back();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), q);
  const std::size_t j = static_cast<std::size_t>(it - cum_.begin());
  const std::size_t i = j - 1;  // cum_[i] < q <= cum_[j], j >= 1
  const double span = cum_[j] - cum_[i];
  // The constructor collapses duplicate sample values, so the knot CDF is
  // strictly increasing and the segment has positive probability mass.
  SPOTBID_EXPECT(span > 0.0, "Empirical::quantile: ECDF knots not strictly increasing");
  const double t = (q - cum_[i]) / span;
  return x_[i] + t * (x_[j] - x_[i]);
}

double Empirical::sample(numeric::Rng& rng) const { return quantile(rng.uniform()); }

double Empirical::mean() const { return mean_; }

double Empirical::variance() const { return var_; }

double Empirical::support_lo() const { return x_.front(); }

double Empirical::support_hi() const { return x_.back(); }

double Empirical::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "Empirical::partial_expectation: p");
  if (p < x_.front()) return 0.0;
  // Atom at the minimum (probability cum_[0]) plus the piecewise-linear
  // segments of the interpolated ECDF.
  double total = x_.front() * cum_.front();
  for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
    if (p <= x_[i]) break;
    const double hi = std::min(p, x_[i + 1]);
    const double slope = (cum_[i + 1] - cum_[i]) / (x_[i + 1] - x_[i]);
    total += slope * 0.5 * (hi * hi - x_[i] * x_[i]);
  }
  return total;
}

std::string Empirical::name() const {
  std::ostringstream os;
  os << "Empirical(n=" << n_ << ", [" << x_.front() << ", " << x_.back() << "])";
  return os.str();
}

}  // namespace spotbid::dist
