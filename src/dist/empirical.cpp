#include "spotbid/dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/numeric/stats.hpp"

namespace spotbid::dist {

namespace {

/// Query-plane telemetry (docs/METRICS.md, `dist.query.*`): counts are a
/// pure function of the simulated work, so they stay inside the metrics
/// determinism contract. References cached once per process.
struct QueryCounters {
  metrics::Counter& cdf;
  metrics::Counter& quantile;
  metrics::Counter& partial_expectation;
  metrics::Counter& batch_sweeps;
  metrics::Counter& batch_queries;
};

QueryCounters& query_counters() {
  static QueryCounters counters{
      metrics::Registry::global().counter("dist.query.cdf"),
      metrics::Registry::global().counter("dist.query.quantile"),
      metrics::Registry::global().counter("dist.query.partial_expectation"),
      metrics::Registry::global().counter("dist.query.batch_sweeps"),
      metrics::Registry::global().counter("dist.query.batch_queries"),
  };
  return counters;
}

}  // namespace

Empirical::Empirical(std::span<const double> samples) : n_(samples.size()) {
  SPOTBID_EXPECT(n_ >= 2, "Empirical: need at least two samples");
  for (double s : samples) SPOTBID_REQUIRE_FINITE(s, "Empirical: sample");

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  mean_ = numeric::mean(sorted);
  var_ = numeric::variance(sorted);

  // Collapse duplicates into (value, cumulative probability) knots.
  x_.reserve(sorted.size());
  cum_.reserve(sorted.size());
  std::size_t seen = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    seen += j - i;
    x_.push_back(sorted[i]);
    cum_.push_back(static_cast<double>(seen) / static_cast<double>(n_));
    i = j;
  }
  if (x_.size() < 2) throw InvalidArgument{"Empirical: need at least two distinct values"};

  // Prefix partial expectations A(x_i): accumulated with the exact
  // expressions of the former left-to-right segment scan, so the O(log K)
  // partial_expectation below reproduces the naive O(K) reference bit for
  // bit (the property suite in tests/test_query_plane.cpp enforces this).
  pe_.reserve(x_.size());
  double total = x_.front() * cum_.front();  // atom at the minimum
  pe_.push_back(total);
  for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
    const double hi = x_[i + 1];
    const double slope = (cum_[i + 1] - cum_[i]) / (x_[i + 1] - x_[i]);
    total += slope * 0.5 * (hi * hi - x_[i] * x_[i]);
    pe_.push_back(total);
  }
}

double Empirical::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Empirical::cdf: x");
  query_counters().cdf.increment();
  if (x < x_.front()) return 0.0;
  if (x >= x_.back()) return 1.0;
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return cum_[i] + t * (cum_[i + 1] - cum_[i]);
}

double Empirical::cdf_left(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Empirical::cdf_left: x");
  // Continuous except for the atom at the minimum knot:
  // P(X < x_0) = 0 while cdf(x_0) = cum_[0].
  if (x <= x_.front()) return 0.0;
  return cdf(x);
}

double Empirical::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "Empirical::pdf: x");
  // Half-open segments [x_i, x_{i+1}): a knot takes the density of the
  // segment to its right (the right-derivative of cdf), and x_.back()
  // belongs to no segment — density 0, consistent with cdf(x_.back()) == 1.
  if (x < x_.front() || x >= x_.back()) return 0.0;
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  return (cum_[i + 1] - cum_[i]) / (x_[i + 1] - x_[i]);
}

double Empirical::quantile(double q) const {
  // Generalized inverse Q(q) = inf{x : F(x) >= q} of the interpolated
  // ECDF. F is continuous and strictly increasing on [x_0, x_k] with
  // F(x_0) = cum_[0] > 0, so:
  //  - q <= cum_[0] maps to x_0 (the atom at the minimum absorbs the
  //    whole lower tail: F(x_0) = cum_[0] >= q already);
  //  - otherwise Q is the exact piecewise-linear inverse, giving the
  //    round-trip contracts cdf(quantile(q)) >= q and
  //    quantile(cdf(x)) <= x (with equality away from the atom).
  SPOTBID_REQUIRE_PROB(q, "Empirical::quantile: q");
  query_counters().quantile.increment();
  if (q <= cum_.front()) return x_.front();
  if (q >= 1.0) return x_.back();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), q);
  const std::size_t j = static_cast<std::size_t>(it - cum_.begin());
  const std::size_t i = j - 1;  // cum_[i] < q <= cum_[j], j >= 1
  const double span = cum_[j] - cum_[i];
  // The constructor collapses duplicate sample values, so the knot CDF is
  // strictly increasing and the segment has positive probability mass.
  SPOTBID_EXPECT(span > 0.0, "Empirical::quantile: ECDF knots not strictly increasing");
  const double t = (q - cum_[i]) / span;
  return x_[i] + t * (x_[j] - x_[i]);
}

double Empirical::sample(numeric::Rng& rng) const { return quantile(rng.uniform()); }

double Empirical::mean() const { return mean_; }

double Empirical::variance() const { return var_; }

double Empirical::support_lo() const { return x_.front(); }

double Empirical::support_hi() const { return x_.back(); }

double Empirical::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "Empirical::partial_expectation: p");
  query_counters().partial_expectation.increment();
  if (p < x_.front()) return 0.0;
  if (p >= x_.back()) return pe_.back();
  // p lands in segment [x_i, x_{i+1}): everything up to x_i is the prefix
  // integral A(x_i); add the partial segment with the same expression the
  // prefix array was accumulated with (bit-identical to the naive scan).
  const auto it = std::upper_bound(x_.begin(), x_.end(), p);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  const double slope = (cum_[i + 1] - cum_[i]) / (x_[i + 1] - x_[i]);
  return pe_[i] + slope * 0.5 * (p * p - x_[i] * x_[i]);
}

void Empirical::cdf_many(std::span<const double> xs, std::span<double> out) const {
  SPOTBID_EXPECT(xs.size() == out.size(), "Empirical::cdf_many: size mismatch");
  for (double x : xs) SPOTBID_REQUIRE_NOT_NAN(x, "Empirical::cdf_many: x");
  auto& counters = query_counters();
  counters.batch_sweeps.increment();
  counters.batch_queries.add(xs.size());

  std::vector<std::uint32_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return xs[a] < xs[b]; });

  // One knot cursor advances monotonically across the sorted queries:
  // after the sort the whole batch costs O(Q + K) comparisons.
  std::size_t seg = 0;
  for (const std::uint32_t idx : order) {
    const double x = xs[idx];
    if (x < x_.front()) {
      out[idx] = 0.0;
      continue;
    }
    if (x >= x_.back()) {
      out[idx] = 1.0;
      continue;
    }
    while (x_[seg + 1] <= x) ++seg;  // terminates: x < x_.back()
    const double t = (x - x_[seg]) / (x_[seg + 1] - x_[seg]);
    out[idx] = cum_[seg] + t * (cum_[seg + 1] - cum_[seg]);
  }
}

void Empirical::partial_expectation_many(std::span<const double> ps,
                                         std::span<double> out) const {
  SPOTBID_EXPECT(ps.size() == out.size(), "Empirical::partial_expectation_many: size mismatch");
  for (double p : ps) SPOTBID_REQUIRE_NOT_NAN(p, "Empirical::partial_expectation_many: p");
  auto& counters = query_counters();
  counters.batch_sweeps.increment();
  counters.batch_queries.add(ps.size());

  std::vector<std::uint32_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return ps[a] < ps[b]; });

  std::size_t seg = 0;
  for (const std::uint32_t idx : order) {
    const double p = ps[idx];
    if (p < x_.front()) {
      out[idx] = 0.0;
      continue;
    }
    if (p >= x_.back()) {
      out[idx] = pe_.back();
      continue;
    }
    while (x_[seg + 1] <= p) ++seg;  // terminates: p < x_.back()
    const double slope = (cum_[seg + 1] - cum_[seg]) / (x_[seg + 1] - x_[seg]);
    out[idx] = pe_[seg] + slope * 0.5 * (p * p - x_[seg] * x_[seg]);
  }
}

std::string Empirical::name() const {
  std::ostringstream os;
  os << "Empirical(n=" << n_ << ", [" << x_.front() << ", " << x_.back() << "])";
  return os.str();
}

}  // namespace spotbid::dist
