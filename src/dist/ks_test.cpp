#include "spotbid/dist/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spotbid/core/types.hpp"

namespace spotbid::dist {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Alternating series; converges very fast for lambda > 0.2. For small
  // lambda use the theta-function form for accuracy.
  if (lambda < 0.2) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) throw InvalidArgument{"ks_two_sample: empty sample"};
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  return {d, kolmogorov_q(lambda)};
}

KsResult ks_one_sample(std::span<const double> samples, const Distribution& ref) {
  if (samples.empty()) throw InvalidArgument{"ks_one_sample: empty sample"};
  std::vector<double> s(samples.begin(), samples.end());
  std::sort(s.begin(), s.end());
  const double n = static_cast<double>(s.size());
  double d = 0.0;
  for (std::size_t k = 0; k < s.size(); ++k) {
    const double f = ref.cdf(s[k]);
    const double lo = static_cast<double>(k) / n;
    const double hi = static_cast<double>(k + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(hi - f)});
  }
  const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
  return {d, kolmogorov_q(lambda)};
}

}  // namespace spotbid::dist
