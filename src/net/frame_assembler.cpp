#include "spotbid/net/frame_assembler.hpp"

#include <algorithm>

#include "spotbid/core/contracts.hpp"
#include "spotbid/net/wire.hpp"

namespace spotbid::net {

FrameAssembler::FrameAssembler(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 4 + kMaxFramePayload)) {}

std::array<std::span<std::uint8_t>, 2> FrameAssembler::write_spans() {
  const std::size_t tail = (head_ + size_) % ring_.size();
  const std::size_t free_bytes = free();
  // The free region runs [tail, tail + free) modulo capacity: one span up
  // to the physical end of the ring, a second from the start if it wraps.
  const std::size_t first = std::min(free_bytes, ring_.size() - tail);
  const std::size_t second = free_bytes - first;
  return {std::span<std::uint8_t>{ring_.data() + tail, first},
          std::span<std::uint8_t>{ring_.data(), second}};
}

void FrameAssembler::commit(std::size_t n) {
  SPOTBID_EXPECT(n <= free(), "FrameAssembler::commit: more bytes than free space");
  size_ += n;
}

void FrameAssembler::append(std::span<const std::uint8_t> bytes) {
  SPOTBID_EXPECT(bytes.size() <= free(), "FrameAssembler::append: ring overflow");
  const auto spans = write_spans();
  const std::size_t first = std::min(bytes.size(), spans[0].size());
  std::copy_n(bytes.begin(), first, spans[0].begin());
  std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(first), bytes.size() - first,
              spans[1].begin());
  size_ += bytes.size();
}

bool FrameAssembler::next_payload(std::vector<std::uint8_t>& payload) {
  if (size_ < 4) return false;
  std::array<std::uint8_t, 4> prefix;
  peek(0, prefix);
  // Throws WireError on an out-of-spec length: the caller must abandon the
  // stream, because the next frame boundary can no longer be found.
  const std::uint32_t length =
      decode_frame_length(std::span<const std::uint8_t, 4>{prefix});
  if (size_ < 4 + static_cast<std::size_t>(length)) return false;
  payload.resize(length);
  peek(4, payload);
  consume(4 + static_cast<std::size_t>(length));
  return true;
}

void FrameAssembler::peek(std::size_t offset, std::span<std::uint8_t> out) const {
  SPOTBID_EXPECT(offset + out.size() <= size_, "FrameAssembler::peek: past buffered bytes");
  const std::size_t start = (head_ + offset) % ring_.size();
  const std::size_t first = std::min(out.size(), ring_.size() - start);
  std::copy_n(ring_.begin() + static_cast<std::ptrdiff_t>(start), first, out.begin());
  std::copy_n(ring_.begin(), out.size() - first,
              out.begin() + static_cast<std::ptrdiff_t>(first));
}

void FrameAssembler::consume(std::size_t count) {
  head_ = (head_ + count) % ring_.size();
  size_ -= count;
}

}  // namespace spotbid::net
