#include "spotbid/net/server.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <utility>
#include <vector>

#include "spotbid/core/metrics.hpp"
#include "spotbid/net/wire.hpp"

namespace spotbid::net {

namespace {

struct NetMetrics {
  metrics::Counter& connections;
  metrics::Counter& frames_hello;
  metrics::Counter& frames_request;
  metrics::Counter& bytes_in;
  metrics::Counter& decode_errors;
  metrics::Counter& frames_response;
  metrics::Counter& frames_error;
  metrics::Counter& bytes_out;
};

NetMetrics& nm() {
  static NetMetrics m{
      metrics::Registry::global().counter("serve.net.connections"),
      metrics::Registry::global().counter("serve.net.frames.hello"),
      metrics::Registry::global().counter("serve.net.frames.request"),
      metrics::Registry::global().counter("serve.net.bytes_in"),
      metrics::Registry::global().counter("serve.net.decode_errors"),
      // Response-vs-error splits and output volume depend on overload
      // timing, hence the .sched. segment (excluded from deterministic()).
      metrics::Registry::global().counter("serve.net.sched.frames.response"),
      metrics::Registry::global().counter("serve.net.sched.frames.error"),
      metrics::Registry::global().counter("serve.net.sched.bytes_out"),
  };
  return m;
}

}  // namespace

/// One accepted connection: reader thread decoding/submitting, writer
/// thread flushing replies strictly FIFO.
struct Server::Connection {
  /// One queued reply: either an already-encoded frame (hello echoes,
  /// protocol errors) or a pending service future.
  struct Pending {
    std::uint64_t seq = 0;
    serve::Kind kind = serve::Kind::kOptimalBid;
    std::uint8_t version = kProtocolVersion;  ///< request frame's version (reply echoes it)
    bool is_frame = false;
    bool is_error = false;  ///< pre-built ERROR (not a HELLO echo); metrics only
    std::vector<std::uint8_t> frame;
    std::future<serve::Response> future;
  };

  TcpStream stream;
  serve::BidService* service;

  std::mutex mutex;
  std::condition_variable ready;
  std::deque<Pending> pending;
  bool reader_done = false;   ///< no more pushes; writer drains and exits
  bool close_after_flush = false;

  std::thread reader;
  std::thread writer;
  std::atomic<bool> finished{false};  ///< both loops exited (reapable)

  Connection(TcpStream accepted, serve::BidService& svc)
      : stream(std::move(accepted)), service(&svc) {}

  void start() {
    reader = std::thread([this] { read_loop(); });
    writer = std::thread([this] { write_loop(); });
  }

  /// Wake everything and join. Safe from any thread except the two loops.
  void shutdown_and_join() {
    stream.shutdown();
    {
      const std::lock_guard<std::mutex> lock{mutex};
      reader_done = true;
    }
    ready.notify_all();
    if (reader.joinable()) reader.join();
    if (writer.joinable()) writer.join();
  }

  void push(Pending item) {
    {
      const std::lock_guard<std::mutex> lock{mutex};
      pending.push_back(std::move(item));
    }
    ready.notify_one();
  }

  void push_frame(std::uint64_t seq, std::vector<std::uint8_t> frame, bool is_error,
                  bool close_after) {
    Pending item;
    item.seq = seq;
    item.is_frame = true;
    item.is_error = is_error;
    item.frame = std::move(frame);
    {
      const std::lock_guard<std::mutex> lock{mutex};
      pending.push_back(std::move(item));
      if (close_after) {
        close_after_flush = true;
        reader_done = true;
      }
    }
    ready.notify_all();
  }

  void read_loop() {
    std::vector<std::uint8_t> payload;
    try {
      for (;;) {
        std::uint8_t prefix[4];
        if (!stream.read_exact(prefix)) break;  // clean close
        std::uint32_t length = 0;
        try {
          length = decode_frame_length(std::span<const std::uint8_t, 4>{prefix});
        } catch (const WireError& e) {
          nm().decode_errors.increment();
          push_frame(0, encode_error(0, ErrorCode::kMalformed, e.what()), true, true);
          break;  // framing is lost; nothing further can be parsed
        }
        payload.resize(length);
        if (!stream.read_exact(payload)) break;  // peer died mid-close
        nm().bytes_in.add(4 + length);
        if (!handle_payload(payload)) break;
      }
    } catch (const SocketError&) {
      // Connection torn down (peer reset, or stop() shut the socket).
    }
    {
      const std::lock_guard<std::mutex> lock{mutex};
      reader_done = true;
    }
    ready.notify_all();
  }

  /// Dispatch one decoded payload; false ends the read loop.
  bool handle_payload(std::span<const std::uint8_t> payload) {
    Frame frame;
    try {
      frame = decode_frame(payload);
    } catch (const WireError& e) {
      nm().decode_errors.increment();
      push_frame(0, encode_error(0, ErrorCode::kMalformed, e.what()), true, true);
      return false;
    }
    switch (frame.type) {
      case FrameType::kHello: {
        nm().frames_hello.increment();
        // Negotiate downward: a peer speaking a newer version gets our
        // maximum back and continues at it; only a version below the floor
        // is a mismatch (docs/PROTOCOL.md §3).
        if (frame.version < kMinProtocolVersion) {
          push_frame(frame.seq,
                     encode_error(frame.seq, ErrorCode::kVersionMismatch,
                                  "server speaks versions " +
                                      std::to_string(int{kMinProtocolVersion}) + ".." +
                                      std::to_string(int{kProtocolVersion})),
                     true, true);
          return false;
        }
        const std::uint8_t negotiated =
            std::min<std::uint8_t>(frame.version, kProtocolVersion);
        push_frame(frame.seq, encode_hello(frame.seq, negotiated), false, false);
        return true;
      }
      case FrameType::kRequest: {
        nm().frames_request.increment();
        serve::Request request;
        try {
          request = decode_request_body(frame);
        } catch (const WireVersionError& e) {
          // Framing is intact — the body just needs a newer version. Report
          // the typed mismatch and keep the connection alive.
          nm().decode_errors.increment();
          push_frame(frame.seq,
                     encode_error(frame.seq, ErrorCode::kVersionMismatch, e.what(),
                                  frame.version),
                     true, false);
          return true;
        } catch (const WireError& e) {
          nm().decode_errors.increment();
          push_frame(frame.seq, encode_error(frame.seq, ErrorCode::kMalformed, e.what()),
                     true, true);
          return false;
        }
        Pending item;
        item.seq = frame.seq;
        item.kind = request.kind;
        item.version = frame.version;
        item.future = service->submit(std::move(request));
        push(std::move(item));
        return true;
      }
      case FrameType::kResponse:
      case FrameType::kError: {
        // Only servers send these; a client doing so violates the spec.
        nm().decode_errors.increment();
        push_frame(frame.seq,
                   encode_error(frame.seq, ErrorCode::kMalformed,
                                std::string{frame_type_name(frame.type)} +
                                    " frames are server-to-client only"),
                   true, true);
        return false;
      }
    }
    return false;
  }

  void write_loop() {
    try {
      for (;;) {
        Pending item;
        {
          std::unique_lock<std::mutex> lock{mutex};
          ready.wait(lock, [this] { return !pending.empty() || reader_done; });
          if (pending.empty()) break;  // reader done and queue drained
          item = std::move(pending.front());
          pending.pop_front();
        }
        // Resolving the OLDEST future before touching the next item is the
        // in-submission-order guarantee; rejected requests hold ready
        // futures so they cannot overtake anything.
        std::vector<std::uint8_t> frame;
        bool is_error = item.is_error;
        if (item.is_frame) {
          frame = std::move(item.frame);
        } else {
          const serve::Response response = item.future.get();
          switch (response.status) {
            case serve::Status::kOverloaded:
              frame = encode_error(item.seq, ErrorCode::kOverloaded,
                                   "admission control rejected the request", item.version);
              is_error = true;
              break;
            case serve::Status::kShutdown:
              frame = encode_error(item.seq, ErrorCode::kShuttingDown,
                                   "service is draining", item.version);
              is_error = true;
              break;
            default:
              // Encoded at the REQUEST frame's version: a v1 client keeps
              // receiving byte-identical v1 response bodies.
              frame = encode_response(item.seq, response, item.version);
              break;
          }
        }
        stream.write_all(frame);
        (is_error ? nm().frames_error : nm().frames_response).increment();
        nm().bytes_out.add(frame.size());
      }
    } catch (const SocketError&) {
      // Peer stopped reading; undelivered replies are dropped with it.
    }
    bool close_now = false;
    {
      const std::lock_guard<std::mutex> lock{mutex};
      close_now = close_after_flush;
    }
    if (close_now) stream.shutdown();  // wake the reader; protocol is over
    finished.store(true, std::memory_order_release);
  }
};

Server::Server(serve::BidService& service, ServerConfig config)
    : service_(&service),
      config_(std::move(config)),
      listener_(config_.host, config_.port) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    // Block until a connection arrives or stop() interrupts the listener —
    // no polling wakeups (the old 50ms accept tick is gone).
    TcpStream accepted = listener_.accept(-1);
    if (stopped_) break;
    reap_finished();
    if (!accepted.valid()) continue;
    nm().connections.increment();
    accepted_count_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>(std::move(accepted), *service_);
    connection->start();
    const std::lock_guard<std::mutex> lock{connections_mutex_};
    connections_.push_back(std::move(connection));
  }
}

void Server::reap_finished() {
  const std::lock_guard<std::mutex> lock{connections_mutex_};
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      (*it)->shutdown_and_join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::stop() {
  if (!started_ || stopped_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  listener_.interrupt();
  if (acceptor_.joinable()) acceptor_.join();
  std::list<std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock{connections_mutex_};
    connections.swap(connections_);
  }
  for (auto& connection : connections) connection->shutdown_and_join();
}

}  // namespace spotbid::net
