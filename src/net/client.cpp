#include "spotbid/net/client.hpp"

#include <algorithm>

namespace spotbid::net {

BidClient::BidClient(const std::string& host, std::uint16_t port)
    : stream_(TcpStream::connect(host, port)) {
  stream_.write_all(encode_hello(0));
  if (!read_payload()) throw SocketError{"server closed during handshake"};
  const Frame frame = decode_frame(payload_);
  if (frame.type == FrameType::kError) {
    const ErrorReply error = decode_error_body(frame);
    throw WireError{"handshake rejected (" + std::string{error_code_name(error.code)} +
                    "): " + error.message};
  }
  if (frame.type != FrameType::kHello)
    throw WireError{"expected a hello frame, got " + std::string{frame_type_name(frame.type)}};
  // Adopt the server's echoed version (never above ours): requests to an
  // older server keep encoding the bodies it speaks.
  version_ = std::min<std::uint8_t>(frame.version, kProtocolVersion);
  if (version_ < kMinProtocolVersion)
    throw WireVersionError{"server negotiated version " + std::to_string(int{version_}) +
                           ", below our floor " + std::to_string(int{kMinProtocolVersion})};
}

std::uint64_t BidClient::send(const serve::Request& request) {
  const std::uint64_t seq = next_seq_++;
  stream_.write_all(encode_request(seq, request, version_));
  ++sent_;
  return seq;
}

bool BidClient::read_payload() {
  std::uint8_t prefix[4];
  if (!stream_.read_exact(prefix)) return false;
  const std::uint32_t length = decode_frame_length(std::span<const std::uint8_t, 4>{prefix});
  payload_.resize(length);
  if (!stream_.read_exact(payload_))
    throw SocketError{"server closed mid-frame"};
  return true;
}

BidClient::Reply BidClient::receive() {
  if (!read_payload()) throw SocketError{"server closed the connection"};
  const Frame frame = decode_frame(payload_);
  Reply reply;
  reply.seq = frame.seq;
  reply.type = frame.type;
  switch (frame.type) {
    case FrameType::kResponse:
      reply.response = decode_response_body(frame);
      break;
    case FrameType::kError:
      reply.error = decode_error_body(frame);
      break;
    default:
      throw WireError{"unexpected " + std::string{frame_type_name(frame.type)} +
                      " frame mid-stream"};
  }
  ++received_;
  return reply;
}

serve::Response BidClient::ask(const serve::Request& request) {
  const serve::Kind kind = request.kind;
  const std::uint64_t seq = send(request);
  const Reply reply = receive();
  if (reply.seq != seq)
    throw WireError{"reply out of order: expected seq " + std::to_string(seq) + ", got " +
                    std::to_string(reply.seq)};
  if (reply.type == FrameType::kResponse) return reply.response;
  serve::Response response;
  response.kind = kind;
  switch (reply.error.code) {
    case ErrorCode::kOverloaded:
      response.status = serve::Status::kOverloaded;
      return response;
    case ErrorCode::kShuttingDown:
      response.status = serve::Status::kShutdown;
      return response;
    default:
      throw WireError{"server error (" + std::string{error_code_name(reply.error.code)} +
                      "): " + reply.error.message};
  }
}

}  // namespace spotbid::net
