#include "spotbid/net/wire.hpp"

#include <bit>

namespace spotbid::net {

namespace {

[[noreturn]] void fail(const std::string& message) { throw WireError{message}; }

[[noreturn]] void fail_version(const std::string& message) { throw WireVersionError{message}; }

void check_version(std::uint8_t version) {
  if (version < kMinProtocolVersion || version > kProtocolVersion)
    fail_version("unsupported protocol version " + std::to_string(version));
}

/// Little-endian append-only sink for one frame payload.
struct Writer {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u16(std::uint16_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
};

/// Bounds-checked little-endian reader over a frame body.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (bytes.size() - pos < n) fail("frame body ends mid-field");
  }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>(std::uint16_t{bytes[pos]} |
                                              std::uint16_t{bytes[pos + 1]} << 8);
    pos += 2;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[pos + i]} << (8 * i);
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  void done() const {
    if (pos != bytes.size())
      fail(std::to_string(bytes.size() - pos) + " trailing byte(s) in frame body");
  }
};

/// Prepend the length prefix to a finished payload.
std::vector<std::uint8_t> seal(Writer payload) {
  if (payload.bytes.size() > kMaxFramePayload)
    fail("frame payload exceeds kMaxFramePayload");
  const auto len = static_cast<std::uint32_t>(payload.bytes.size());
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.bytes.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  frame.insert(frame.end(), payload.bytes.begin(), payload.bytes.end());
  return frame;
}

Writer envelope(FrameType type, std::uint64_t seq, std::uint8_t version) {
  Writer w;
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(seq);
  return w;
}

}  // namespace

std::string_view frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kVersionMismatch: return "version_mismatch";
    case ErrorCode::kMalformed: return "malformed";
  }
  return "unknown";
}

WireError::WireError(const std::string& message) : std::runtime_error{"wire: " + message} {}

std::vector<std::uint8_t> encode_hello(std::uint64_t seq, std::uint8_t version) {
  check_version(version);
  return seal(envelope(FrameType::kHello, seq, version));
}

std::vector<std::uint8_t> encode_request(std::uint64_t seq, const serve::Request& request,
                                         std::uint8_t version) {
  check_version(version);
  if (request.key.size() > kMaxKeyBytes) fail("request key exceeds kMaxKeyBytes");
  if (version < 2 && request.kind == serve::Kind::kPortfolioBid)
    fail_version("portfolio_bid requires protocol version 2");
  Writer w = envelope(FrameType::kRequest, seq, version);
  w.u8(static_cast<std::uint8_t>(request.key.size()));
  w.bytes.insert(w.bytes.end(), request.key.begin(), request.key.end());
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.u8(static_cast<std::uint8_t>(request.mode));
  w.f64(request.bid.usd());
  w.f64(request.job.execution_time.hours());
  w.f64(request.job.recovery_time.hours());
  w.f64(request.demand);
  if (version >= 2) {
    w.f64(request.deadline.hours());
    w.f64(request.epsilon);
    w.u8(request.levels);
  }
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_response(std::uint64_t seq, const serve::Response& response,
                                          std::uint8_t version) {
  check_version(version);
  if (version < 2 && response.kind == serve::Kind::kPortfolioBid)
    fail_version("portfolio_bid requires protocol version 2");
  Writer w = envelope(FrameType::kResponse, seq, version);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u8(static_cast<std::uint8_t>(response.kind));
  w.u64(response.epoch);
  w.f64(response.bid.usd());
  w.f64(response.expected_cost.usd());
  w.f64(response.expected_hours.hours());
  w.f64(response.acceptance);
  w.u8(response.feasible ? 1 : 0);
  w.u8(response.use_on_demand ? 1 : 0);
  w.f64(response.price.usd());
  if (version >= 2) {
    if (response.level_count > serve::kMaxPortfolioLevels)
      fail("response level count exceeds kMaxPortfolioLevels");
    w.f64(response.violation);
    w.f64(response.on_demand_share);
    w.u8(response.level_count);
    // Only the used tranches travel; the fixed-size tail of the struct is
    // zeros by the determinism contract and re-zeroed by the decoder.
    for (std::uint8_t k = 0; k < response.level_count; ++k) {
      w.f64(response.levels[k].bid.usd());
      w.f64(response.levels[k].share);
    }
  }
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_error(std::uint64_t seq, ErrorCode code,
                                       std::string_view message, std::uint8_t version) {
  check_version(version);
  // Clamp rather than reject: error paths must always produce a frame.
  const std::size_t room = kMaxFramePayload - kFrameOverhead - 3;
  if (message.size() > room) message = message.substr(0, room);
  Writer w = envelope(FrameType::kError, seq, version);
  w.u8(static_cast<std::uint8_t>(code));
  w.u16(static_cast<std::uint16_t>(message.size()));
  w.bytes.insert(w.bytes.end(), message.begin(), message.end());
  return seal(std::move(w));
}

std::uint32_t decode_frame_length(std::span<const std::uint8_t, 4> prefix) {
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{prefix[static_cast<std::size_t>(i)]} << (8 * i);
  if (len < kFrameOverhead) fail("frame length " + std::to_string(len) + " below frame overhead");
  if (len > kMaxFramePayload)
    fail("frame length " + std::to_string(len) + " exceeds kMaxFramePayload");
  return len;
}

Frame decode_frame(std::span<const std::uint8_t> payload) {
  Reader r{payload};
  Frame frame;
  frame.version = r.u8();
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kError))
    fail("unknown frame type " + std::to_string(type));
  frame.type = static_cast<FrameType>(type);
  // HELLO must stay decodable whatever version the peer speaks — it is how
  // a mismatch is discovered and reported instead of dropped on the floor.
  if (frame.type != FrameType::kHello) check_version(frame.version);
  frame.seq = r.u64();
  frame.body = payload.subspan(r.pos);
  return frame;
}

serve::Request decode_request_body(const Frame& frame) {
  if (frame.type != FrameType::kRequest)
    fail(std::string{"expected a request frame, got "} +
         std::string{frame_type_name(frame.type)});
  Reader r{frame.body};
  serve::Request q;
  const std::uint8_t key_len = r.u8();
  r.need(key_len);
  q.key.assign(reinterpret_cast<const char*>(r.bytes.data() + r.pos), key_len);
  r.pos += key_len;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(serve::Kind::kPortfolioBid))
    fail("unknown request kind " + std::to_string(kind));
  if (frame.version < 2 && kind == static_cast<std::uint8_t>(serve::Kind::kPortfolioBid))
    fail_version("portfolio_bid requires protocol version 2");
  q.kind = static_cast<serve::Kind>(kind);
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(serve::BidMode::kPersistent))
    fail("unknown bid mode " + std::to_string(mode));
  q.mode = static_cast<serve::BidMode>(mode);
  q.bid = Money{r.f64()};
  q.job.execution_time = Hours{r.f64()};
  q.job.recovery_time = Hours{r.f64()};
  q.demand = r.f64();
  if (frame.version >= 2) {
    q.deadline = Hours{r.f64()};
    q.epsilon = r.f64();
    q.levels = r.u8();
  }
  r.done();
  return q;
}

serve::Response decode_response_body(const Frame& frame) {
  if (frame.type != FrameType::kResponse)
    fail(std::string{"expected a response frame, got "} +
         std::string{frame_type_name(frame.type)});
  Reader r{frame.body};
  serve::Response p;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(serve::Status::kError))
    fail("unknown response status " + std::to_string(status));
  p.status = static_cast<serve::Status>(status);
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(serve::Kind::kPortfolioBid))
    fail("unknown response kind " + std::to_string(kind));
  if (frame.version < 2 && kind == static_cast<std::uint8_t>(serve::Kind::kPortfolioBid))
    fail_version("portfolio_bid requires protocol version 2");
  p.kind = static_cast<serve::Kind>(kind);
  p.epoch = r.u64();
  p.bid = Money{r.f64()};
  p.expected_cost = Money{r.f64()};
  p.expected_hours = Hours{r.f64()};
  p.acceptance = r.f64();
  const std::uint8_t feasible = r.u8();
  const std::uint8_t on_demand = r.u8();
  if (feasible > 1 || on_demand > 1) fail("response flag byte is not 0 or 1");
  p.feasible = feasible == 1;
  p.use_on_demand = on_demand == 1;
  p.price = Money{r.f64()};
  if (frame.version >= 2) {
    p.violation = r.f64();
    p.on_demand_share = r.f64();
    const std::uint8_t level_count = r.u8();
    if (level_count > serve::kMaxPortfolioLevels)
      fail("response level count " + std::to_string(level_count) +
           " exceeds kMaxPortfolioLevels");
    p.level_count = level_count;
    for (std::uint8_t k = 0; k < level_count; ++k) {
      p.levels[k].bid = Money{r.f64()};
      p.levels[k].share = r.f64();
    }
  }
  r.done();
  return p;
}

ErrorReply decode_error_body(const Frame& frame) {
  if (frame.type != FrameType::kError)
    fail(std::string{"expected an error frame, got "} +
         std::string{frame_type_name(frame.type)});
  Reader r{frame.body};
  ErrorReply e;
  const std::uint8_t code = r.u8();
  if (code < static_cast<std::uint8_t>(ErrorCode::kOverloaded) ||
      code > static_cast<std::uint8_t>(ErrorCode::kMalformed))
    fail("unknown error code " + std::to_string(code));
  e.code = static_cast<ErrorCode>(code);
  const std::uint16_t len = r.u16();
  r.need(len);
  e.message.assign(reinterpret_cast<const char*>(r.bytes.data() + r.pos), len);
  r.pos += len;
  r.done();
  return e;
}

std::string hex_dump(std::span<const std::uint8_t> bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t row = 0; row < bytes.size(); row += 16) {
    for (int shift = 12; shift >= 0; shift -= 4) out.push_back(kHex[(row >> shift) & 0xF]);
    out.append("  ");
    for (std::size_t i = row; i < row + 16 && i < bytes.size(); ++i) {
      out.push_back(kHex[bytes[i] >> 4]);
      out.push_back(kHex[bytes[i] & 0xF]);
      out.push_back(' ');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace spotbid::net
