#include "spotbid/net/epoll_server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "spotbid/core/metrics.hpp"
#include "spotbid/net/frame_assembler.hpp"
#include "spotbid/net/wire.hpp"

namespace spotbid::net {

namespace {

/// epoll_event.data.u64 tags below the first connection id.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventFdTag = 1;

/// Frames coalesced per writev call; kernels cap iovec counts at IOV_MAX
/// (>= 1024 by POSIX) and a drain tick rarely readies more than this.
constexpr std::size_t kMaxIov = 512;

/// Bucket bounds for the writev coalescing histogram (frames per call).
constexpr double kWritevBounds[] = {1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5, 128.5};

/// Same counters as the blocking server (both front-ends feed one wire
/// surface) plus the shard plumbing. Everything scheduling-dependent —
/// wakeups, completion routing, write coalescing — carries a .sched.
/// segment, excluded from metrics::Snapshot::deterministic().
struct EpollMetrics {
  metrics::Counter& connections;
  metrics::Counter& frames_hello;
  metrics::Counter& frames_request;
  metrics::Counter& bytes_in;
  metrics::Counter& decode_errors;
  metrics::Counter& frames_response;
  metrics::Counter& frames_error;
  metrics::Counter& bytes_out;
  metrics::Counter& shards_started;
  metrics::Counter& shard_wakeups;
  metrics::Counter& shard_completions;
  metrics::Counter& shard_writev_calls;
  metrics::Counter& shard_short_writes;
  metrics::Histogram& writev_frames;
};

EpollMetrics& em() {
  static EpollMetrics m{
      metrics::Registry::global().counter("serve.net.connections"),
      metrics::Registry::global().counter("serve.net.frames.hello"),
      metrics::Registry::global().counter("serve.net.frames.request"),
      metrics::Registry::global().counter("serve.net.bytes_in"),
      metrics::Registry::global().counter("serve.net.decode_errors"),
      metrics::Registry::global().counter("serve.net.sched.frames.response"),
      metrics::Registry::global().counter("serve.net.sched.frames.error"),
      metrics::Registry::global().counter("serve.net.sched.bytes_out"),
      metrics::Registry::global().counter("serve.net.shard.started"),
      metrics::Registry::global().counter("serve.net.shard.sched.wakeups"),
      metrics::Registry::global().counter("serve.net.shard.sched.completions"),
      metrics::Registry::global().counter("serve.net.shard.sched.writev_calls"),
      metrics::Registry::global().counter("serve.net.shard.sched.short_writes"),
      metrics::Registry::global().histogram("serve.net.sched.writev_frames_per_call",
                                            kWritevBounds),
  };
  return m;
}

/// One reply slot in a connection's FIFO. Slots are queued at frame-decode
/// time in submission order and flushed strictly front-first, so replies
/// can never overtake each other no matter when their completions land.
struct Ready {
  std::uint64_t ticket = 0;  ///< position in the connection's FIFO
  std::uint64_t seq = 0;     ///< echoed into the reply frame
  /// Request frame's version; the reply is encoded at it (per-frame
  /// versioning, docs/PROTOCOL.md §3).
  std::uint8_t version = kProtocolVersion;
  bool ready = false;
  bool is_error = false;
  std::vector<std::uint8_t> frame;
};

}  // namespace

struct EpollServer::Conn {
  std::uint64_t id = 0;
  TcpStream stream;
  FrameAssembler assembler;
  std::deque<Ready> replies;
  /// Bytes a short writev left behind; flushed before anything newer.
  std::vector<std::uint8_t> carry;
  std::size_t carry_off = 0;
  std::uint64_t next_ticket = 0;
  bool reading_done = false;  ///< EOF or protocol error; no more reads
  bool close_after_flush = false;
  bool dirty = false;  ///< queued for this tick's flush pass
};

struct EpollServer::Shard {
  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  /// Cross-thread inbox: shard 0 parks newly accepted connections here and
  /// service completions land here; the eventfd wakes the owner.
  std::mutex mutex;
  std::vector<TcpStream> incoming;
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t ticket = 0;
    serve::Response response;
  };
  std::vector<Completion> completions;

  // Shard-thread-private state below.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::vector<std::uint64_t> dirty;  ///< conns to flush this drain tick
  std::vector<epoll_event> events;
  std::uint64_t unresolved = 0;  ///< submitted requests awaiting completion
  bool accept_ready = false;

  ~Shard() {
    if (epoll_fd >= 0) (void)::close(epoll_fd);
    if (event_fd >= 0) (void)::close(event_fd);
  }

  void wake() { (void)::eventfd_write(event_fd, 1); }
};

EpollServer::EpollServer(serve::BidService& service, EpollServerConfig config)
    : service_(&service),
      config_(std::move(config)),
      listener_(config_.host, config_.port) {
  shard_count_ =
      config_.shards > 0
          ? config_.shards
          : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  if (config_.max_events < 1) config_.max_events = 1;
}

EpollServer::~EpollServer() { stop(); }

void EpollServer::start() {
  if (started_) return;
  started_ = true;
  listener_.set_nonblocking();
  for (int i = 0; i < shard_count_; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (shard->epoll_fd < 0 || shard->event_fd < 0)
      throw SocketError{"epoll_create1/eventfd failed"};
    shard->events.resize(static_cast<std::size_t>(config_.max_events));
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.u64 = kEventFdTag;
    if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &wake) != 0)
      throw SocketError{"epoll_ctl(eventfd) failed"};
    if (i == 0) {
      // The listener is just another fd in shard 0's set — no acceptor
      // thread and no accept poll interval.
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerTag;
      if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &lev) != 0)
        throw SocketError{"epoll_ctl(listener) failed"};
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    em().shards_started.increment();
    shard->thread = std::thread([this, raw = shard.get()] { shard_loop(*raw); });
  }
}

void EpollServer::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  for (auto& shard : shards_) shard->wake();
  for (auto& shard : shards_)
    if (shard->thread.joinable()) shard->thread.join();
  // A completion may still sit between its inbox push and its eventfd
  // wake; the eventfds must stay open until the last one leaves.
  while (callbacks_in_flight_.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}

void EpollServer::shard_loop(Shard& shard) {
  for (;;) {
    const int count =
        ::epoll_wait(shard.epoll_fd, shard.events.data(), config_.max_events, -1);
    if (count < 0) {
      if (errno == EINTR) continue;
      break;  // epoll set torn down under us; only possible at shutdown
    }
    process_events(shard, count);
    process_inbox(shard);
    if (shard.accept_ready) {
      shard.accept_ready = false;
      if (!stopping_.load(std::memory_order_acquire)) accept_burst(shard);
    }
    flush_dirty(shard);
    // Drain protocol: every submitted request resolves exactly once (the
    // service guarantees it), so once unresolved hits zero nothing else
    // can become ready — flush what the peers will take and leave.
    if (stopping_.load(std::memory_order_acquire) && shard.unresolved == 0) {
      drain_and_close_all(shard);
      return;
    }
  }
}

void EpollServer::process_events(Shard& shard, int count) {
  for (int i = 0; i < count; ++i) {
    const epoll_event& event = shard.events[static_cast<std::size_t>(i)];
    const std::uint64_t id = event.data.u64;
    if (id == kEventFdTag) {
      eventfd_t value = 0;
      (void)::eventfd_read(shard.event_fd, &value);
      em().shard_wakeups.increment();
      continue;
    }
    if (id == kListenerTag) {
      shard.accept_ready = true;
      continue;
    }
    const auto it = shard.conns.find(id);
    if (it == shard.conns.end()) continue;  // closed earlier this tick
    Conn& conn = *it->second;
    if ((event.events & (EPOLLERR | EPOLLHUP)) != 0) {
      destroy_conn(shard, id);
      continue;
    }
    if ((event.events & (EPOLLIN | EPOLLRDHUP)) != 0) on_readable(shard, conn);
    // on_readable may have destroyed the conn; re-check before touching it.
    if ((event.events & EPOLLOUT) != 0 && shard.conns.count(id) != 0 && !conn.dirty) {
      conn.dirty = true;
      shard.dirty.push_back(id);
    }
  }
}

void EpollServer::process_inbox(Shard& shard) {
  std::vector<TcpStream> incoming;
  std::vector<Shard::Completion> completions;
  {
    const std::lock_guard<std::mutex> lock{shard.mutex};
    incoming.swap(shard.incoming);
    completions.swap(shard.completions);
  }
  for (TcpStream& stream : incoming) register_conn(shard, std::move(stream));
  for (Shard::Completion& completion : completions) {
    --shard.unresolved;
    em().shard_completions.increment();
    const auto it = shard.conns.find(completion.conn_id);
    if (it == shard.conns.end()) continue;  // connection died first
    Conn& conn = *it->second;
    if (conn.replies.empty()) continue;  // unreachable; defensive
    // Tickets are dense, so the slot sits at its distance from the head.
    const std::uint64_t head = conn.replies.front().ticket;
    Ready& slot = conn.replies[static_cast<std::size_t>(completion.ticket - head)];
    // Status-to-frame mapping mirrors net::Server's write_loop exactly —
    // the byte-for-byte contract between the two front-ends.
    const serve::Response& response = completion.response;
    switch (response.status) {
      case serve::Status::kOverloaded:
        slot.frame = encode_error(slot.seq, ErrorCode::kOverloaded,
                                  "admission control rejected the request", slot.version);
        slot.is_error = true;
        break;
      case serve::Status::kShutdown:
        slot.frame = encode_error(slot.seq, ErrorCode::kShuttingDown,
                                  "service is draining", slot.version);
        slot.is_error = true;
        break;
      default:
        // Encoded at the REQUEST frame's version: a v1 client keeps
        // receiving byte-identical v1 response bodies.
        slot.frame = encode_response(slot.seq, response, slot.version);
        break;
    }
    slot.ready = true;
    if (!conn.dirty) {
      conn.dirty = true;
      shard.dirty.push_back(conn.id);
    }
  }
}

void EpollServer::accept_burst(Shard& shard) {
  for (;;) {
    TcpStream accepted = listener_.try_accept();
    if (!accepted.valid()) return;
    em().connections.increment();
    accepted_count_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target = static_cast<std::size_t>(
        next_shard_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<std::uint64_t>(shard_count_));
    if (target == static_cast<std::size_t>(shard.index)) {
      register_conn(shard, std::move(accepted));
    } else {
      Shard& other = *shards_[target];
      {
        const std::lock_guard<std::mutex> lock{other.mutex};
        other.incoming.push_back(std::move(accepted));
      }
      other.wake();
    }
  }
}

void EpollServer::register_conn(Shard& shard, TcpStream stream) {
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->stream = std::move(stream);
  epoll_event ev{};
  // Registered once with both directions edge-triggered: EPOLLOUT edges
  // arrive exactly when a previously full socket drains, which is the only
  // time the flush path needs a nudge.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, conn->stream.fd(), &ev) != 0)
    return;  // fd exhausted or dying; the stream closes with the unique_ptr
  const std::uint64_t id = conn->id;
  shard.conns.emplace(id, std::move(conn));
}

void EpollServer::on_readable(Shard& shard, Conn& conn) {
  if (conn.reading_done) return;
  const std::uint64_t id = conn.id;
  for (;;) {
    const auto spans = conn.assembler.write_spans();
    iovec iov[2];
    int iov_count = 0;
    for (const auto& span : spans) {
      if (span.empty()) continue;
      iov[iov_count].iov_base = span.data();
      iov[iov_count].iov_len = span.size();
      ++iov_count;
    }
    if (iov_count == 0) return;  // unreachable: a drained ring always has room
    const ssize_t n = ::readv(conn.stream.fd(), iov, iov_count);
    if (n > 0) {
      conn.assembler.commit(static_cast<std::size_t>(n));
      em().bytes_in.add(static_cast<std::uint64_t>(n));
      if (!process_frames(shard, conn)) return;  // protocol over for this conn
      continue;
    }
    if (n == 0) {
      // Clean close from the peer: answer what is already in flight, then
      // close once the reply queue drains (mirrors the blocking server).
      conn.reading_done = true;
      if (conn.replies.empty() && conn.carry_off >= conn.carry.size())
        destroy_conn(shard, id);
      else
        conn.close_after_flush = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    destroy_conn(shard, id);  // peer reset
    return;
  }
}

bool EpollServer::process_frames(Shard& shard, Conn& conn) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    bool have = false;
    try {
      have = conn.assembler.next_payload(payload);
    } catch (const WireError& e) {
      // Framing is lost; nothing further can be parsed. Same reply and
      // close behaviour as the blocking reader's length-prefix error.
      em().decode_errors.increment();
      Ready slot;
      slot.ticket = conn.next_ticket++;
      slot.ready = true;
      slot.is_error = true;
      slot.frame = encode_error(0, ErrorCode::kMalformed, e.what());
      conn.replies.push_back(std::move(slot));
      conn.reading_done = true;
      conn.close_after_flush = true;
      if (!conn.dirty) {
        conn.dirty = true;
        shard.dirty.push_back(conn.id);
      }
      return false;
    }
    if (!have) return true;
    if (!handle_payload(shard, conn, payload)) return false;
  }
}

bool EpollServer::handle_payload(Shard& shard, Conn& conn,
                                 std::span<const std::uint8_t> payload) {
  const std::uint64_t conn_id = conn.id;
  const auto push_ready = [&](std::uint64_t seq, std::vector<std::uint8_t> frame,
                              bool is_error, bool close_after) {
    Ready slot;
    slot.ticket = conn.next_ticket++;
    slot.seq = seq;
    slot.ready = true;
    slot.is_error = is_error;
    slot.frame = std::move(frame);
    conn.replies.push_back(std::move(slot));
    if (close_after) {
      conn.reading_done = true;
      conn.close_after_flush = true;
    }
    if (!conn.dirty) {
      conn.dirty = true;
      shard.dirty.push_back(conn_id);
    }
  };

  Frame frame;
  try {
    frame = decode_frame(payload);
  } catch (const WireError& e) {
    em().decode_errors.increment();
    push_ready(0, encode_error(0, ErrorCode::kMalformed, e.what()), true, true);
    return false;
  }
  switch (frame.type) {
    case FrameType::kHello: {
      em().frames_hello.increment();
      // Negotiate downward: a peer speaking a newer version gets our
      // maximum back and continues at it; only a version below the floor
      // is a mismatch (docs/PROTOCOL.md §3).
      if (frame.version < kMinProtocolVersion) {
        push_ready(frame.seq,
                   encode_error(frame.seq, ErrorCode::kVersionMismatch,
                                "server speaks versions " +
                                    std::to_string(int{kMinProtocolVersion}) + ".." +
                                    std::to_string(int{kProtocolVersion})),
                   true, true);
        return false;
      }
      const std::uint8_t negotiated =
          std::min<std::uint8_t>(frame.version, kProtocolVersion);
      push_ready(frame.seq, encode_hello(frame.seq, negotiated), false, false);
      return true;
    }
    case FrameType::kRequest: {
      em().frames_request.increment();
      serve::Request request;
      try {
        request = decode_request_body(frame);
      } catch (const WireVersionError& e) {
        // Framing is intact — the body just needs a newer version. Report
        // the typed mismatch and keep the connection alive.
        em().decode_errors.increment();
        push_ready(frame.seq,
                   encode_error(frame.seq, ErrorCode::kVersionMismatch, e.what(),
                                frame.version),
                   true, false);
        return true;
      } catch (const WireError& e) {
        em().decode_errors.increment();
        push_ready(frame.seq, encode_error(frame.seq, ErrorCode::kMalformed, e.what()),
                   true, true);
        return false;
      }
      Ready slot;
      slot.ticket = conn.next_ticket++;
      slot.seq = frame.seq;
      slot.version = frame.version;
      const std::uint64_t ticket = slot.ticket;
      conn.replies.push_back(std::move(slot));
      ++shard.unresolved;
      Shard* owner = &shard;
      callbacks_in_flight_.fetch_add(1, std::memory_order_acq_rel);
      service_->submit(
          std::move(request), [this, owner, conn_id, ticket](serve::Response response) {
            {
              const std::lock_guard<std::mutex> lock{owner->mutex};
              owner->completions.push_back(
                  Shard::Completion{conn_id, ticket, std::move(response)});
            }
            // Wake and release strictly after the lock scope: the eventfd
            // write is a syscall, and the in-flight count gates teardown.
            owner->wake();
            callbacks_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
          });
      return true;
    }
    case FrameType::kResponse:
    case FrameType::kError: {
      // Only servers send these; a client doing so violates the spec.
      em().decode_errors.increment();
      push_ready(frame.seq,
                 encode_error(frame.seq, ErrorCode::kMalformed,
                              std::string{frame_type_name(frame.type)} +
                                  " frames are server-to-client only"),
                 true, true);
      return false;
    }
  }
  return false;
}

void EpollServer::flush_dirty(Shard& shard) {
  // One writev per connection per drain tick: every reply that became
  // ready while processing this tick's events goes out in one syscall.
  for (const std::uint64_t id : shard.dirty) {
    const auto it = shard.conns.find(id);
    if (it == shard.conns.end()) continue;
    it->second->dirty = false;
    flush(shard, *it->second);
  }
  shard.dirty.clear();
}

void EpollServer::flush(Shard& shard, Conn& conn) {
  const std::uint64_t id = conn.id;
  // Finish bytes a previous short write left behind first; nothing newer
  // may pass them.
  while (conn.carry_off < conn.carry.size()) {
    const ssize_t n = ::send(conn.stream.fd(), conn.carry.data() + conn.carry_off,
                             conn.carry.size() - conn.carry_off, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.carry_off += static_cast<std::size_t>(n);
      em().bytes_out.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // next EPOLLOUT edge
    destroy_conn(shard, id);
    return;
  }
  conn.carry.clear();
  conn.carry_off = 0;

  while (!conn.replies.empty() && conn.replies.front().ready) {
    // Collect the ready prefix of the FIFO (bounded by the iovec cap).
    std::vector<std::vector<std::uint8_t>> frames;
    while (!conn.replies.empty() && conn.replies.front().ready &&
           frames.size() < kMaxIov) {
      Ready& slot = conn.replies.front();
      (slot.is_error ? em().frames_error : em().frames_response).increment();
      frames.push_back(std::move(slot.frame));
      conn.replies.pop_front();
    }
    std::vector<iovec> iov(frames.size());
    std::size_t total = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      iov[i].iov_base = frames[i].data();
      iov[i].iov_len = frames[i].size();
      total += frames[i].size();
    }
    em().shard_writev_calls.increment();
    em().writev_frames.observe(static_cast<double>(frames.size()));
    ssize_t n = ::writev(conn.stream.fd(), iov.data(), static_cast<int>(iov.size()));
    while (n < 0 && errno == EINTR)
      n = ::writev(conn.stream.fd(), iov.data(), static_cast<int>(iov.size()));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        n = 0;  // park everything in the carry buffer
      } else {
        destroy_conn(shard, id);
        return;
      }
    }
    em().bytes_out.add(static_cast<std::uint64_t>(n));
    std::size_t written = static_cast<std::size_t>(n);
    if (written < total) {
      // Short write: the unsent tail (possibly spanning frames) parks in
      // the carry buffer until the socket signals writable again.
      em().shard_short_writes.increment();
      for (const std::vector<std::uint8_t>& frame : frames) {
        if (written >= frame.size()) {
          written -= frame.size();
          continue;
        }
        conn.carry.insert(conn.carry.end(),
                          frame.begin() + static_cast<std::ptrdiff_t>(written),
                          frame.end());
        written = 0;
      }
      return;
    }
  }
  if (conn.close_after_flush && conn.replies.empty() &&
      conn.carry_off >= conn.carry.size())
    destroy_conn(shard, id);
}

void EpollServer::destroy_conn(Shard& shard, std::uint64_t id) {
  // Outstanding service completions for this connection still arrive; the
  // inbox pass drops them when the id lookup misses. Closing the fd (with
  // the Conn) removes it from the epoll set.
  shard.conns.erase(id);
}

void EpollServer::drain_and_close_all(Shard& shard) {
  // Push what the peers will take right now, then close. A peer that
  // stopped reading loses its tail exactly as with the blocking server.
  std::vector<std::uint64_t> ids;
  ids.reserve(shard.conns.size());
  for (const auto& [id, conn] : shard.conns) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = shard.conns.find(id);  // flush may erase dead peers
    if (it == shard.conns.end()) continue;
    Conn& conn = *it->second;
    if (!conn.replies.empty() || conn.carry_off < conn.carry.size())
      flush(shard, conn);
  }
  shard.conns.clear();
}

}  // namespace spotbid::net
