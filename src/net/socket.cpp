#include "spotbid/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace spotbid::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw SocketError{what + ": " + std::strerror(errno)};
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string dotted = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, dotted.c_str(), &addr.sin_addr) != 1)
    throw SocketError{"not an IPv4 address: " + host};
  return addr;
}

/// Batching happens at the frame level (one write per frame), so Nagle only
/// adds latency between a request frame and its reply.
void disable_nagle(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    fail("fcntl(O_NONBLOCK)");
}

}  // namespace

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpStream::~TcpStream() { close(); }

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_address(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  // spotbid-lint: allow(S-net-rawwire) sockaddr is the kernel's ABI, not wire data
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect to " + host + ":" + std::to_string(port));
  }
  disable_nagle(fd);
  return TcpStream{fd};
}

bool TcpStream::read_exact(std::span<std::uint8_t> buffer) {
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t n = ::read(fd_, buffer.data() + done, buffer.size() - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return false;  // clean close at a frame boundary
      throw SocketError{"peer closed mid-frame (" + std::to_string(done) + " of " +
                        std::to_string(buffer.size()) + " bytes)"};
    }
    if (errno == EINTR) continue;
    fail("read");
  }
  return true;
}

void TcpStream::write_all(std::span<const std::uint8_t> buffer) {
  std::size_t done = 0;
  while (done < buffer.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE ->
    // SocketError, not a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd_, buffer.data() + done, buffer.size() - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    fail("write");
  }
}

void TcpStream::shutdown() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::set_nonblocking() { make_nonblocking(fd_); }

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_address(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // spotbid-lint: allow(S-net-rawwire) sockaddr is the kernel's ABI, not wire data
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("bind/listen on " + host + ":" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  // spotbid-lint: allow(S-net-rawwire) sockaddr is the kernel's ABI, not wire data
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) fail("getsockname");
  port_ = ntohs(bound.sin_port);
  // The interrupt wake channel: accept() blocks on {listener, eventfd}, so
  // interrupt() never relies on a poll timeout (the old 50ms busy-wakeup).
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("eventfd");
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      event_fd_(std::exchange(other.event_fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      interrupted_(other.interrupted_.load()) {}

TcpListener::~TcpListener() {
  if (fd_ >= 0) (void)::close(fd_);
  if (event_fd_ >= 0) (void)::close(event_fd_);
}

TcpStream TcpListener::accept(int timeout_ms) {
  if (interrupted_.load(std::memory_order_acquire)) return TcpStream{};
  pollfd pfds[2] = {{fd_, POLLIN, 0}, {event_fd_, POLLIN, 0}};
  const int ready = ::poll(pfds, 2, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return TcpStream{};
    fail("poll");
  }
  if (ready == 0 || interrupted_.load(std::memory_order_acquire)) return TcpStream{};
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EINVAL) return TcpStream{};
    fail("accept");
  }
  disable_nagle(fd);
  return TcpStream{fd};
}

TcpStream TcpListener::try_accept() {
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED)
      return TcpStream{};
    fail("accept4");
  }
  disable_nagle(fd);
  return TcpStream{fd};
}

void TcpListener::interrupt() noexcept {
  interrupted_.store(true, std::memory_order_release);
  if (event_fd_ >= 0) (void)::eventfd_write(event_fd_, 1);
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::set_nonblocking() { make_nonblocking(fd_); }

}  // namespace spotbid::net
