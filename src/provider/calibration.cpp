#include "spotbid/provider/calibration.hpp"

#include <cmath>

namespace spotbid::provider {

ProviderModel calibrated_model(const ec2::InstanceType& type) {
  return ProviderModel{type.on_demand, type.min_price(), type.market.beta, type.market.theta};
}

dist::DistributionPtr calibrated_arrivals(const ec2::InstanceType& type) {
  const ProviderModel model = calibrated_model(type);
  const double lambda_min = model.lambda_min();
  if (!(lambda_min > 0.0))
    throw ModelError{"calibrated_arrivals: floor never binds for " + type.name +
                     " (beta too small relative to pi_bar - 2 pi_min)"};
  const double q0 = type.market.floor_mass;
  if (q0 < 0.0 || q0 >= 1.0)
    throw InvalidArgument{"calibrated_arrivals: floor_mass must be in [0, 1)"};
  // Extend the Pareto below Lambda_min so that P(Lambda <= Lambda_min) = q0:
  // those arrivals clamp onto the price floor, reproducing the atom real
  // spot prices show at their minimum.
  const double alpha = type.market.pareto_alpha;
  const double xm = lambda_min * std::pow(1.0 - q0, 1.0 / alpha);
  return std::make_shared<dist::Pareto>(alpha, xm);
}

std::shared_ptr<const EquilibriumPriceDistribution> calibrated_price_distribution(
    const ec2::InstanceType& type) {
  return std::make_shared<EquilibriumPriceDistribution>(calibrated_model(type),
                                                        calibrated_arrivals(type));
}

}  // namespace spotbid::provider
