#include "spotbid/provider/model.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/numeric/optimize.hpp"

namespace spotbid::provider {

namespace {

metrics::Counter& eq3_evaluations() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("provider.eq3_evaluations");
  return c;
}

}  // namespace

ProviderModel::ProviderModel(Money pi_bar, Money pi_min, double beta, double theta)
    : pi_bar_(pi_bar), pi_min_(pi_min), beta_(beta), theta_(theta) {
  SPOTBID_REQUIRE_FINITE(pi_bar.usd(), "ProviderModel: pi_bar");
  SPOTBID_REQUIRE_FINITE(pi_min.usd(), "ProviderModel: pi_min");
  SPOTBID_REQUIRE_FINITE(beta, "ProviderModel: beta");
  SPOTBID_EXPECT(pi_bar.usd() > 0.0, "ProviderModel: pi_bar must be > 0");
  SPOTBID_EXPECT(pi_min.usd() >= 0.0 && pi_min < pi_bar,
                 "ProviderModel: need 0 <= pi_min < pi_bar");
  SPOTBID_EXPECT(beta > 0.0, "ProviderModel: beta must be > 0");
  SPOTBID_EXPECT(theta > 0.0 && theta <= 1.0, "ProviderModel: theta must be in (0, 1]");
}

double ProviderModel::accepted_bids(Money pi, double demand) const {
  SPOTBID_REQUIRE_IN_SUPPORT(pi.usd(), pi_min_.usd(), pi_bar_.usd(),
                             "accepted_bids: pi (eq. 3 price bounds)");
  SPOTBID_EXPECT(demand >= 0.0, "accepted_bids: demand must be >= 0");
  const double fraction = (pi_bar_.usd() - pi.usd()) / spread();
  return demand * std::clamp(fraction, 0.0, 1.0);
}

double ProviderModel::objective(Money pi, double demand) const {
  const double n = accepted_bids(pi, demand);
  return beta_ * std::log1p(n) + pi.usd() * n;
}

Money ProviderModel::optimal_price(double demand) const {
  SPOTBID_REQUIRE_FINITE(demand, "optimal_price: demand");
  SPOTBID_EXPECT(demand > 0.0, "optimal_price: demand must be > 0");
  eq3_evaluations().increment();
  const double w = spread();
  const double pb = pi_bar_.usd();
  const double inv_l = 1.0 / demand;
  const double root = std::sqrt((pb + 2.0 * w * inv_l) * (pb + 2.0 * w * inv_l) +
                                8.0 * beta_ * w * inv_l);
  const double interior = 0.75 * pb + 0.5 * w * inv_l - 0.25 * root;
  return Money{std::clamp(interior, pi_min_.usd(), pb)};
}

Money ProviderModel::optimal_price_numeric(double demand) const {
  SPOTBID_REQUIRE_FINITE(demand, "optimal_price_numeric: demand");
  SPOTBID_EXPECT(demand > 0.0, "optimal_price_numeric: demand must be > 0");
  const auto negated = [&](double pi) { return -objective(Money{pi}, demand); };
  const auto result = numeric::grid_then_golden(negated, pi_min_.usd(), pi_bar_.usd(), 512,
                                                {.x_tolerance = 1e-13, .max_iterations = 300});
  return Money{result.x};
}

double ProviderModel::foc_residual(Money pi, double demand) const {
  SPOTBID_REQUIRE_FINITE(pi.usd(), "foc_residual: pi");
  const double pb = pi_bar_.usd();
  const double p = pi.usd();
  SPOTBID_EXPECT(pb - p != 0.0 && pb - 2.0 * p != 0.0, "foc_residual: pi at a pole of eq. 2");
  return demand - spread() / (pb - p) * (beta_ / (pb - 2.0 * p) - 1.0);
}

Money ProviderModel::equilibrium_price(double arrivals) const {
  SPOTBID_REQUIRE_NOT_NAN(arrivals, "equilibrium_price: arrivals");
  SPOTBID_EXPECT(arrivals >= 0.0, "equilibrium_price: arrivals must be >= 0");
  const double h = 0.5 * (pi_bar_.usd() - beta_ / (1.0 + arrivals / theta_));
  return Money{std::max(h, pi_min_.usd())};
}

double ProviderModel::equilibrium_arrivals(Money pi) const {
  SPOTBID_REQUIRE_FINITE(pi.usd(), "equilibrium_arrivals: pi");
  const double pb = pi_bar_.usd();
  const double p = pi.usd();
  // h^{-1}(pi) = theta (beta/(pi_bar - 2 pi) - 1) has a pole at pi_bar/2 and
  // goes negative below h(0); both are outside the Proposition-2 range.
  const double floor_price = 0.5 * (pb - beta_);  // h(0)
  if (!(p > floor_price) || !(p < 0.5 * pb))
    throw ModelError{"equilibrium_arrivals: price outside (h(0), pi_bar/2)"};
  return theta_ * (beta_ / (pb - 2.0 * p) - 1.0);
}

double ProviderModel::equilibrium_arrivals_derivative(Money pi) const {
  const double denom = pi_bar_.usd() - 2.0 * pi.usd();
  if (!(denom > 0.0))
    throw ModelError{"equilibrium_arrivals_derivative: price >= pi_bar/2"};
  return 2.0 * theta_ * beta_ / (denom * denom);
}

double ProviderModel::lambda_min() const {
  const double h0 = 0.5 * (pi_bar_.usd() - beta_);
  if (h0 >= pi_min_.usd()) return 0.0;  // floor never binds
  return equilibrium_arrivals(pi_min_);
}

double ProviderModel::equilibrium_demand(double arrivals) const {
  const Money pi = equilibrium_price(arrivals);
  const double gap = pi_bar_.usd() - pi.usd();
  if (!(gap > 0.0)) throw ModelError{"equilibrium_demand: price at the cap"};
  return spread() * arrivals / (theta_ * gap);
}

}  // namespace spotbid::provider
