#include "spotbid/provider/queue.hpp"

#include <algorithm>
#include <cmath>

#include "spotbid/core/contracts.hpp"
#include "spotbid/core/metrics.hpp"
#include "spotbid/numeric/roots.hpp"

namespace spotbid::provider {

namespace {

struct QueueMetrics {
  metrics::Counter& steps;
  metrics::Histogram& demand;
  metrics::Histogram& clearing_price_usd;
  metrics::Gauge& demand_last;
};

QueueMetrics& qm() {
  static QueueMetrics m{
      metrics::Registry::global().counter("provider.queue_steps"),
      metrics::Registry::global().histogram("provider.queue_demand",
                                            metrics::kDemandBounds),
      metrics::Registry::global().histogram("provider.clearing_price_usd",
                                            metrics::kPriceBoundsUsd),
      metrics::Registry::global().gauge("provider.queue_demand_last"),
  };
  return m;
}

}  // namespace

QueueSimulator::QueueSimulator(ProviderModel model, double initial_demand)
    : model_(model), demand_(initial_demand) {
  SPOTBID_REQUIRE_FINITE(initial_demand, "QueueSimulator: initial demand");
  SPOTBID_EXPECT(initial_demand > 0.0, "QueueSimulator: initial demand must be > 0");
}

QueueSlot QueueSimulator::step(double arrivals) {
  SPOTBID_REQUIRE_FINITE(arrivals, "QueueSimulator::step: arrivals");
  SPOTBID_EXPECT(arrivals >= 0.0, "QueueSimulator::step: negative arrivals");
  QueueSlot slot;
  slot.demand = demand_;
  slot.arrivals = arrivals;
  slot.price = model_.optimal_price(demand_);
  slot.accepted = model_.accepted_bids(slot.price, demand_);
  slot.finished = model_.theta() * slot.accepted;
  demand_ = demand_ - slot.finished + arrivals;
  // eq. 4: L(t+1) = L(t) - theta N(t) + Lambda(t) stays non-negative because
  // N <= L and theta <= 1; a negative queue means the recursion is broken.
  SPOTBID_EXPECT(demand_ >= 0.0, "QueueSimulator::step: eq. 4 queue went negative");
  history_.push_back(slot);
  auto& m = qm();
  m.steps.increment();
  m.demand.observe(slot.demand);
  m.clearing_price_usd.observe(slot.price.usd());
  m.demand_last.set(demand_);
  return slot;
}

void QueueSimulator::run(const dist::Distribution& arrivals, int slots, numeric::Rng& rng) {
  for (int i = 0; i < slots; ++i) step(std::max(arrivals.sample(rng), 0.0));
}

double QueueSimulator::average_demand() const {
  if (history_.empty()) throw ModelError{"average_demand: no history"};
  double sum = 0.0;
  for (const auto& slot : history_) sum += slot.demand;
  return sum / static_cast<double>(history_.size());
}

std::vector<double> QueueSimulator::drift_series() const {
  std::vector<double> drifts;
  if (history_.size() < 2) return drifts;
  drifts.reserve(history_.size() - 1);
  for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
    const double l0 = history_[i].demand;
    const double l1 = history_[i + 1].demand;
    drifts.push_back(0.5 * (l1 * l1 - l0 * l0));
  }
  return drifts;
}

double conditional_drift(const ProviderModel& model, double demand, double lambda_mean,
                         double lambda_var) {
  SPOTBID_EXPECT(demand > 0.0, "conditional_drift: demand must be > 0");
  SPOTBID_REQUIRE_FINITE(lambda_mean, "conditional_drift: lambda_mean");
  SPOTBID_EXPECT(lambda_var >= 0.0, "conditional_drift: lambda_var must be >= 0");
  const Money price = model.optimal_price(demand);
  const double a =
      1.0 - model.theta() * (model.pi_bar().usd() - price.usd()) / model.spread();
  return 0.5 * (a * a - 1.0) * demand * demand + a * demand * lambda_mean +
         0.5 * (lambda_var + lambda_mean * lambda_mean);
}

double drift_negative_threshold(const ProviderModel& model, double lambda_mean,
                                double lambda_var, double search_hi) {
  const auto drift = [&](double demand) {
    return conditional_drift(model, demand, lambda_mean, lambda_var);
  };
  // The drift is dominated by -(c/2) L^2 for large L; scan geometrically for
  // a negative point, then bisect for the crossing.
  double hi = 1.0;
  while (hi < search_hi && drift(hi) >= 0.0) hi *= 2.0;
  if (drift(hi) >= 0.0)
    throw ModelError{"drift_negative_threshold: drift not negative below search_hi"};
  if (drift(1e-9) < 0.0) return 0.0;  // negative everywhere
  const auto root = numeric::bisect(drift, 1e-9, hi, {.x_tolerance = 1e-9 * hi});
  return root.x;
}

double equilibrium_residual(const ProviderModel& model, double demand, double arrivals) {
  return demand - model.equilibrium_demand(arrivals);
}

}  // namespace spotbid::provider
