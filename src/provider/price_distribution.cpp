#include "spotbid/provider/price_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spotbid/core/contracts.hpp"
#include "spotbid/numeric/integrate.hpp"

namespace spotbid::provider {

EquilibriumPriceDistribution::EquilibriumPriceDistribution(ProviderModel model,
                                                           dist::DistributionPtr arrivals)
    : model_(model), arrivals_(std::move(arrivals)) {
  if (!arrivals_) throw InvalidArgument{"EquilibriumPriceDistribution: null arrivals"};

  const double lambda_lo = std::max(arrivals_->support_lo(), 0.0);
  atom_ = arrivals_->cdf(model_.lambda_min());
  lo_ = model_.equilibrium_price(lambda_lo).usd();

  double lambda_hi = arrivals_->support_hi();
  if (!std::isfinite(lambda_hi)) lambda_hi = arrivals_->quantile(1.0 - 1e-13);
  hi_ = model_.equilibrium_price(lambda_hi).usd();

  // Moments via the quantile representation E[g(X)] = int_0^1 g(Q(u)) du —
  // exact for the atom and insensitive to the near-vertical density at hi_.
  const auto q = [this](double u) { return quantile(std::clamp(u, 0.0, 1.0)); };
  mean_ = numeric::adaptive_simpson(q, 0.0, 1.0, 1e-12);
  const double m = mean_;
  var_ = numeric::adaptive_simpson(
      [&](double u) {
        const double x = q(u);
        return (x - m) * (x - m);
      },
      0.0, 1.0, 1e-12);
}

double EquilibriumPriceDistribution::pdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "EquilibriumPriceDistribution::pdf: x");
  if (x <= lo_ || x >= 0.5 * model_.pi_bar().usd()) return 0.0;
  if (x >= hi_) return 0.0;
  const double h0 = 0.5 * (model_.pi_bar().usd() - model_.beta());
  if (x <= h0) return 0.0;  // below h(0): unreachable prices
  const double lambda = model_.equilibrium_arrivals(Money{x});
  return arrivals_->pdf(lambda) * model_.equilibrium_arrivals_derivative(Money{x});
}

double EquilibriumPriceDistribution::cdf(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "EquilibriumPriceDistribution::cdf: x");
  if (x < lo_) return 0.0;
  if (x >= hi_) return 1.0;
  if (x == lo_) return atom_;
  const double h0 = 0.5 * (model_.pi_bar().usd() - model_.beta());
  if (x <= h0) return atom_;
  const double half_bar = 0.5 * model_.pi_bar().usd();
  if (x >= half_bar) return 1.0;
  return std::max(atom_, arrivals_->cdf(model_.equilibrium_arrivals(Money{x})));
}

double EquilibriumPriceDistribution::cdf_left(double x) const {
  SPOTBID_REQUIRE_NOT_NAN(x, "EquilibriumPriceDistribution::cdf_left: x");
  if (x <= lo_) return 0.0;
  return cdf(x);
}

double EquilibriumPriceDistribution::quantile(double q) const {
  SPOTBID_REQUIRE_PROB(q, "EquilibriumPriceDistribution::quantile: q");
  if (q <= atom_) return lo_;
  const double lambda = arrivals_->quantile(q);
  return model_.equilibrium_price(lambda).usd();
}

double EquilibriumPriceDistribution::sample(numeric::Rng& rng) const {
  return model_.equilibrium_price(std::max(arrivals_->sample(rng), 0.0)).usd();
}

double EquilibriumPriceDistribution::mean() const { return mean_; }

double EquilibriumPriceDistribution::variance() const { return var_; }

double EquilibriumPriceDistribution::partial_expectation(double p) const {
  SPOTBID_REQUIRE_NOT_NAN(p, "EquilibriumPriceDistribution::partial_expectation: p");
  if (p < lo_) return 0.0;
  double total = atom_ * lo_;
  const double hi = std::min(p, hi_);
  if (hi > lo_) {
    total += numeric::adaptive_simpson([this](double x) { return x * pdf(x); }, lo_, hi, 1e-12);
  }
  return total;
}

std::string EquilibriumPriceDistribution::name() const {
  std::ostringstream os;
  os << "EquilibriumPrice(pi_bar=" << model_.pi_bar().usd() << ", beta=" << model_.beta()
     << ", theta=" << model_.theta() << ", arrivals=" << arrivals_->name() << ")";
  return os.str();
}

}  // namespace spotbid::provider
