#include "spotbid/mapreduce/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spotbid/numeric/rng.hpp"

namespace spotbid::mapreduce {

namespace {

/// State of one map task.
struct Task {
  double work_hours = 0.0;
  double progress_hours = 0.0;
  int owner = -1;  ///< slave index, -1 when unassigned
  [[nodiscard]] bool done() const { return progress_hours >= work_hours - 1e-12; }
};

/// Per-slave bookkeeping.
struct Slave {
  market::RequestId request = 0;
  int task = -1;                    ///< index into tasks, -1 when idle
  double recovery_debt_hours = 0.0;
  int last_launches = 0;
  long last_running_slots = 0;
};

/// Index of an unassigned, unfinished task; -1 when none.
int next_pending_task(const std::vector<Task>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (!tasks[i].done() && tasks[i].owner < 0) return static_cast<int>(i);
  return -1;
}

bool all_done(const std::vector<Task>& tasks) {
  return std::all_of(tasks.begin(), tasks.end(), [](const Task& t) { return t.done(); });
}

}  // namespace

ClusterResult run_mapreduce(market::SpotMarket& master_market, market::SpotMarket& slave_market,
                            const ClusterConfig& config) {
  if (config.nodes < 1) throw InvalidArgument{"run_mapreduce: nodes must be >= 1"};
  if (config.tasks_per_node < 1)
    throw InvalidArgument{"run_mapreduce: tasks_per_node must be >= 1"};
  if (std::abs((master_market.slot_length() - slave_market.slot_length()).hours()) > 1e-12)
    throw InvalidArgument{"run_mapreduce: markets must share a slot length"};
  if (master_market.current_slot() != slave_market.current_slot())
    throw InvalidArgument{"run_mapreduce: markets must be aligned"};

  const double tk = slave_market.slot_length().hours();
  const double tr = config.job.recovery_time.hours();
  const double total_work = (config.job.execution_time + config.job.overhead_time).hours();
  if (!(total_work > 0.0)) throw InvalidArgument{"run_mapreduce: no work"};

  // Build the task list: equal map tasks covering t_s + t_o.
  const int task_count = config.nodes * config.tasks_per_node;
  std::vector<Task> tasks(static_cast<std::size_t>(task_count));
  for (auto& t : tasks) t.work_hours = total_work / task_count;

  // Submit the master (one-time) and the slaves (persistent).
  auto master_id = master_market.submit({config.master_bid, market::BidKind::kOneTime});
  std::vector<Slave> slaves(static_cast<std::size_t>(config.nodes));
  for (auto& s : slaves)
    s.request = slave_market.submit({config.slave_bid, market::BidKind::kPersistent});

  numeric::Rng failure_rng{config.seed};
  ClusterResult result;
  const SlotIndex start_slot = slave_market.current_slot();

  for (long step = 0; step < config.max_slots; ++step) {
    master_market.advance();
    // Markets may be the same object; only advance once in that case.
    if (&slave_market != &master_market) slave_market.advance();
    ++result.slots;

    // Master upkeep: resubmit if the one-time request was outbid.
    const auto& master_status = master_market.status(master_id);
    const bool master_up = master_status.state == market::RequestState::kRunning;
    if (master_status.state == market::RequestState::kTerminated) {
      result.master_cost += master_status.accrued_cost;
      master_id = master_market.submit({config.master_bid, market::BidKind::kOneTime});
      ++result.master_restarts;
    }

    for (std::size_t si = 0; si < slaves.size(); ++si) {
      Slave& slave = slaves[si];
      const auto& status = slave_market.status(slave.request);

      // Detect relaunch after an interruption -> recovery debt.
      if (status.launches > slave.last_launches) {
        if (slave.last_launches > 0) {
          slave.recovery_debt_hours += tr;
          ++result.slave_interruptions;
        }
        slave.last_launches = status.launches;
      }

      const bool ran_this_slot = status.running_slots > slave.last_running_slots;
      if (ran_this_slot) slave.last_running_slots = status.running_slots;
      if (!ran_this_slot) continue;

      // Hardware-failure injection: the node crashes mid-slot; the master
      // reschedules its task and the node pays recovery when it resumes.
      if (config.node_failure_probability > 0.0 &&
          failure_rng.bernoulli(config.node_failure_probability)) {
        ++result.injected_failures;
        if (slave.task >= 0) {
          tasks[static_cast<std::size_t>(slave.task)].owner = -1;
          slave.task = -1;
          ++result.tasks_rescheduled;
        }
        slave.recovery_debt_hours += tr;
        continue;
      }

      // Slaves coordinate through the master; no progress while it is down.
      if (!master_up) continue;

      double available = tk;
      if (slave.recovery_debt_hours > 0.0) {
        const double pay = std::min(slave.recovery_debt_hours, available);
        slave.recovery_debt_hours -= pay;
        available -= pay;
      }

      // Work through tasks, pulling new assignments as they finish.
      while (available > 1e-15) {
        if (slave.task < 0) {
          slave.task = next_pending_task(tasks);
          if (slave.task < 0) break;  // nothing left for this node
          tasks[static_cast<std::size_t>(slave.task)].owner = static_cast<int>(si);
        }
        Task& task = tasks[static_cast<std::size_t>(slave.task)];
        const double need = task.work_hours - task.progress_hours;
        const double spend = std::min(need, available);
        task.progress_hours += spend;
        available -= spend;
        if (task.done()) slave.task = -1;
      }
    }

    if (all_done(tasks)) {
      result.completed = true;
      break;
    }
  }

  // Close requests and settle bills.
  master_market.close(master_id);
  result.master_cost += master_market.status(master_id).accrued_cost;
  for (const auto& slave : slaves) {
    slave_market.close(slave.request);
    result.slave_cost += slave_market.status(slave.request).accrued_cost;
  }
  result.completion_time =
      Hours{static_cast<double>(slave_market.current_slot() - start_slot) * tk};
  return result;
}

}  // namespace spotbid::mapreduce
